// The posting record stored in RTSI inverted lists.
//
// RTSI's key idea (Section IV-B): score ingredients live *inside* the
// posting, so computing an audio stream's score never needs to consult a
// big per-term hash table (LSII) or visit other LSM components. Each
// posting carries a popularity snapshot, the freshness timestamp of the
// window that produced it, and the term frequency contributed by that
// window.

#ifndef RTSI_INDEX_POSTING_H_
#define RTSI_INDEX_POSTING_H_

#include <cstdint>

#include "common/types.h"

namespace rtsi::index {

struct Posting {
  StreamId stream = 0;
  float pop = 0.0f;     // Popularity snapshot at insertion time.
  Timestamp frsh = 0;   // Timestamp of the inserted audio window.
  TermFreq tf = 0;      // Term frequency contributed by the window.

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.stream == b.stream && a.pop == b.pop && a.frsh == b.frsh &&
           a.tf == b.tf;
  }
};

/// Which of the three sorted inverted lists to traverse.
enum class SortKey {
  kPopularity = 0,
  kFreshness = 1,
  kTermFrequency = 2,
};

inline constexpr int kNumSortKeys = 3;

}  // namespace rtsi::index

#endif  // RTSI_INDEX_POSTING_H_
