// Huffman-compressed representation of a sealed posting list.
//
// Used by sealed LSM components when compression is enabled (Figure 15).
// Postings are serialized column-wise with delta/varint coding, then the
// byte stream is entropy-coded (index/huffman.h). The per-term maxima stay
// uncompressed so query upper bounds never require a decode; the full list
// is decoded (and re-sealed) only when a query actually traverses the term.

#ifndef RTSI_INDEX_COMPRESSED_POSTINGS_H_
#define RTSI_INDEX_COMPRESSED_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "index/term_postings.h"

namespace rtsi::index {

class CompressedTermPostings {
 public:
  /// Compresses `postings` (arrival order is preserved; permutations are
  /// rebuilt on decode).
  static CompressedTermPostings FromPostings(const TermPostings& postings);

  /// Decompresses into a sealed TermPostings. Returns an empty list if the
  /// blob is corrupt (cannot happen for blobs produced by FromPostings).
  TermPostings Decode() const;

  /// Decodes a standalone blob (snapshot restore path).
  static TermPostings DecodeBlob(const std::vector<std::uint8_t>& blob);

  /// The self-contained compressed bytes (snapshot save path).
  const std::vector<std::uint8_t>& blob() const { return blob_; }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  float max_pop() const { return max_pop_; }
  Timestamp max_frsh() const { return max_frsh_; }
  TermFreq max_tf() const { return max_tf_; }

  std::size_t MemoryBytes() const {
    return blob_.capacity() + sizeof(*this);
  }

 private:
  std::vector<std::uint8_t> blob_;
  std::size_t count_ = 0;
  float max_pop_ = 0.0f;
  Timestamp max_frsh_ = 0;
  TermFreq max_tf_ = 0;
};

}  // namespace rtsi::index

#endif  // RTSI_INDEX_COMPRESSED_POSTINGS_H_
