// RTSI's live-term hash table (Section IV-B).
//
// "We maintain another small hash table which keeps track of the existing
// term frequency of a term" — the table is keyed by term: for each term
// it holds the total accumulated frequency per tracked stream, so (a) the
// *total* tf of a live stream is available in O(1) even though its
// postings are scattered across multiple LSM components, and (b) a query
// can enumerate exactly the tracked streams matching a term without
// scanning the table. The table is small: it only covers streams that are
// currently broadcasting (plus finished streams whose postings have not
// yet been consolidated into a single component — see the invariant in
// core/rtsi_index.h).

#ifndef RTSI_INDEX_LIVE_TERM_TABLE_H_
#define RTSI_INDEX_LIVE_TERM_TABLE_H_

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rtsi::index {

class LiveTermTable {
 public:
  LiveTermTable() = default;

  LiveTermTable(const LiveTermTable&) = delete;
  LiveTermTable& operator=(const LiveTermTable&) = delete;

  /// Accumulates `tf` for (stream, term); returns the new total.
  TermFreq Add(StreamId stream, TermId term, TermFreq tf);

  /// Batched window insertion. Returns the new total per term, aligned
  /// with `terms` (0 for entries with tf == 0).
  std::vector<TermFreq> AddWindow(StreamId stream,
                                  const std::vector<TermCount>& terms);

  /// Total accumulated tf, or 0 when the pair is not tracked.
  TermFreq GetTotal(StreamId stream, TermId term) const;

  /// True when the stream has any tracked terms.
  bool ContainsStream(StreamId stream) const;

  /// Drops all entries of a stream (broadcast finished and consolidated,
  /// or stream deleted).
  void RemoveStream(StreamId stream);

  /// Monotone upper bound on the total tf of `term` over every stream
  /// that is (or ever was) tracked. Used to keep query upper bounds valid
  /// for streams whose postings span multiple components.
  TermFreq GetMaxTotal(TermId term) const;

  /// Calls fn(StreamId, TermFreq total) for every tracked stream
  /// containing `term`, under the term's shard lock; `fn` must not
  /// reenter the table. This is the query pre-scan: cost proportional to
  /// the number of *matching* tracked streams.
  template <typename Fn>
  void ForEachStreamOfTerm(TermId term, Fn&& fn) const {
    const TermShard& shard = TermShardFor(term);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(term);
    if (it == shard.map.end()) return;
    for (const auto& [stream, total] : it->second) {
      fn(stream, total);
    }
  }

  /// Calls fn(StreamId, const std::unordered_map<TermId, TermFreq>&) for
  /// every tracked stream (test/diagnostic helper; materializes each
  /// stream's term map).
  template <typename Fn>
  void ForEachStream(Fn&& fn) const {
    for (const StreamShard& shard : stream_shards_) {
      std::vector<StreamId> streams;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        streams.reserve(shard.terms_of_stream.size());
        for (const auto& [stream, terms] : shard.terms_of_stream) {
          streams.push_back(stream);
        }
      }
      for (const StreamId stream : streams) {
        fn(stream, MaterializeStream(stream));
      }
    }
  }

  /// Number of tracked streams.
  std::size_t num_streams() const;

  /// Number of tracked (stream, term) pairs.
  std::size_t num_entries() const;

  std::size_t MemoryBytes() const;

 private:
  static constexpr std::size_t kNumShards = 64;

  // term -> (stream -> total tf). The primary structure.
  struct TermShard {
    mutable std::mutex mu;
    std::unordered_map<TermId, std::unordered_map<StreamId, TermFreq>> map;
  };
  // stream -> its terms, for RemoveStream / ContainsStream.
  struct StreamShard {
    mutable std::mutex mu;
    std::unordered_map<StreamId, std::vector<TermId>> terms_of_stream;
  };

  TermShard& TermShardFor(TermId term) {
    return term_shards_[term % kNumShards];
  }
  const TermShard& TermShardFor(TermId term) const {
    return term_shards_[term % kNumShards];
  }
  StreamShard& StreamShardFor(StreamId stream) {
    return stream_shards_[stream % kNumShards];
  }
  const StreamShard& StreamShardFor(StreamId stream) const {
    return stream_shards_[stream % kNumShards];
  }

  std::unordered_map<TermId, TermFreq> MaterializeStream(
      StreamId stream) const;

  void BumpMaxTotal(TermId term, TermFreq total);

  TermShard term_shards_[kNumShards];
  StreamShard stream_shards_[kNumShards];
  mutable std::mutex max_mu_;
  std::unordered_map<TermId, TermFreq> max_total_;
};

}  // namespace rtsi::index

#endif  // RTSI_INDEX_LIVE_TERM_TABLE_H_
