// RTSI's live-term hash table (Section IV-B).
//
// "We maintain another small hash table which keeps track of the existing
// term frequency of a term" — the table is keyed by term: for each term
// it holds the total accumulated frequency per tracked stream, so (a) the
// *total* tf of a live stream is available in O(1) even though its
// postings are scattered across multiple LSM components, and (b) a query
// can enumerate exactly the tracked streams matching a term without
// scanning the table. The table is small: it only covers streams that are
// currently broadcasting (plus finished streams whose postings have not
// yet been consolidated into a single component — see the invariant in
// core/rtsi_index.h).
//
// Locking protocol (two disjoint shard families, never nested):
//   1. The term shards own the counters. A mutation takes exactly one
//      term-shard lock, records whether it created the (term, stream)
//      entry, and releases the lock.
//   2. First-seen terms are then registered in the stream shard (the
//      reverse index RemoveStream walks) under that lock alone.
// No thread ever holds a term-shard and a stream-shard lock at the same
// time, so the families cannot deadlock against each other regardless of
// acquisition order. The protocol keeps one invariant: *every* creation
// of a (term → stream) counter is followed by a registration of that term
// under the stream. RemoveStream relies on it — it drains the stream's
// registered term list and loops until the stream entry stays gone, so a
// racing insert either lands entirely (counter + registration, cleaned by
// the next RemoveStream) or is fully reclaimed. The one benign artifact
// is a *stale registration* (term listed for a stream whose counter was
// already erased); it holds no counter, is invisible to queries, and the
// next RemoveStream drops it.
//
// The per-stream counter maps allocate from a per-term-shard WindowArena
// (table-lifetime, size-class free lists recycle erased nodes) so
// steady-state ingest churn never touches the global allocator; pass
// use_arena = false for plain heap maps.

#ifndef RTSI_INDEX_LIVE_TERM_TABLE_H_
#define RTSI_INDEX_LIVE_TERM_TABLE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/window_arena.h"

namespace rtsi::index {

class LiveTermTable {
 public:
  /// The per-stream counter map of one term. Arena-allocated (nodes and
  /// bucket arrays) when the table was built with use_arena.
  using StreamTfAlloc = ArenaAllocator<std::pair<const StreamId, TermFreq>>;
  using StreamTfMap =
      std::unordered_map<StreamId, TermFreq, std::hash<StreamId>,
                         std::equal_to<StreamId>, StreamTfAlloc>;

  /// `tracker` (optional) has the arenas' slab bytes charged to its
  /// kLiveArena category while the table is alive.
  explicit LiveTermTable(bool use_arena = true,
                         std::shared_ptr<MemoryTracker> tracker = nullptr);

  LiveTermTable(const LiveTermTable&) = delete;
  LiveTermTable& operator=(const LiveTermTable&) = delete;

  /// Accumulates `tf` for (stream, term); returns the new total.
  TermFreq Add(StreamId stream, TermId term, TermFreq tf);

  /// Batched window insertion. Returns the new total per term, aligned
  /// with `terms` (0 for entries with tf == 0).
  std::vector<TermFreq> AddWindow(StreamId stream,
                                  const std::vector<TermCount>& terms);

  /// Total accumulated tf, or 0 when the pair is not tracked.
  TermFreq GetTotal(StreamId stream, TermId term) const;

  /// True when the stream has any tracked terms.
  bool ContainsStream(StreamId stream) const;

  /// Drops all entries of a stream (broadcast finished and consolidated,
  /// or stream deleted). Loops until the removal is stable, so inserts
  /// racing this call cannot leak counters past the *next* RemoveStream
  /// (see the locking protocol above).
  void RemoveStream(StreamId stream);

  /// Monotone upper bound on the total tf of `term` over every stream
  /// that is (or ever was) tracked. Used to keep query upper bounds valid
  /// for streams whose postings span multiple components.
  TermFreq GetMaxTotal(TermId term) const;

  /// Calls fn(StreamId, TermFreq total) for every tracked stream
  /// containing `term`, under the term's shard lock; `fn` must not
  /// reenter the table. This is the query pre-scan: cost proportional to
  /// the number of *matching* tracked streams.
  template <typename Fn>
  void ForEachStreamOfTerm(TermId term, Fn&& fn) const {
    const TermShard& shard = TermShardFor(term);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(term);
    if (it == shard.map.end()) return;
    for (const auto& [stream, total] : it->second) {
      fn(stream, total);
    }
  }

  /// Calls fn(StreamId, const std::unordered_map<TermId, TermFreq>&) for
  /// every tracked stream (test/diagnostic helper; materializes each
  /// stream's term map).
  template <typename Fn>
  void ForEachStream(Fn&& fn) const {
    for (const StreamShard& shard : stream_shards_) {
      std::vector<StreamId> streams;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        streams.reserve(shard.terms_of_stream.size());
        for (const auto& [stream, terms] : shard.terms_of_stream) {
          streams.push_back(stream);
        }
      }
      for (const StreamId stream : streams) {
        fn(stream, MaterializeStream(stream));
      }
    }
  }

  /// Number of tracked streams.
  std::size_t num_streams() const;

  /// Number of tracked (stream, term) pairs.
  std::size_t num_entries() const;

  std::size_t MemoryBytes() const;

  /// Aggregate allocation counters of the per-shard arenas (zeroed struct
  /// when the table runs on the heap). owned_bytes here is exactly what
  /// the kLiveArena tracker category carries for this table, and exactly
  /// what MemoryBytes() attributes to the counter maps — the test suite
  /// pins the three together.
  WindowArena::Stats ArenaStats() const;

 private:
  static constexpr std::size_t kNumShards = 64;

  // term -> (stream -> total tf). The primary structure. The arena backs
  // the StreamTfMap nodes/buckets and is used only under `mu`; declared
  // before `map` so the maps (which deallocate into it) die first.
  struct TermShard {
    mutable std::mutex mu;
    std::unique_ptr<WindowArena> arena;
    std::unordered_map<TermId, StreamTfMap> map;
  };
  // stream -> its terms, for RemoveStream / ContainsStream. Heap-backed:
  // RemoveStream swaps the vector out of the lock's scope, so its storage
  // must not be tied to a shard-locked arena.
  struct StreamShard {
    mutable std::mutex mu;
    std::unordered_map<StreamId, std::vector<TermId>> terms_of_stream;
  };

  TermShard& TermShardFor(TermId term) {
    return term_shards_[term % kNumShards];
  }
  const TermShard& TermShardFor(TermId term) const {
    return term_shards_[term % kNumShards];
  }
  StreamShard& StreamShardFor(StreamId stream) {
    return stream_shards_[stream % kNumShards];
  }
  const StreamShard& StreamShardFor(StreamId stream) const {
    return stream_shards_[stream % kNumShards];
  }

  /// The (term, stream) counter slot, created on demand with the shard's
  /// arena allocator. Caller holds shard.mu.
  TermFreq& SlotFor(TermShard& shard, TermId term, StreamId stream);

  /// Appends `terms` to the stream's registration list (stream lock only).
  void RegisterTerms(StreamId stream, const std::vector<TermId>& terms);

  std::unordered_map<TermId, TermFreq> MaterializeStream(
      StreamId stream) const;

  void BumpMaxTotal(TermId term, TermFreq total);

  TermShard term_shards_[kNumShards];
  StreamShard stream_shards_[kNumShards];
  mutable std::mutex max_mu_;
  std::unordered_map<TermId, TermFreq> max_total_;
};

}  // namespace rtsi::index

#endif  // RTSI_INDEX_LIVE_TERM_TABLE_H_
