// Per-term postings with the RTSI "three sorted inverted lists".
//
// Mutable state (inside I0) is a single append-only array: appends arrive
// in timestamp order, so the freshness-descending list is simply the array
// reversed, and running maxima keep upper bounds available in O(1).
// Seal() materializes the popularity- and term-frequency-descending
// permutations, turning the object into the immutable three-list form the
// paper draws in Figure 3. (Algorithm 2 lines 6-7: lists that are not yet
// sorted are sorted during a merge.)
//
// Unsealed storage may live in a WindowArena (the live window's slab
// allocator): construct with the shard's arena and `entries_` grows
// through its size-class free lists instead of the global heap. Seal()
// migrates the surviving postings to the heap before building the sorted
// views, so a sealed TermPostings never references arena memory and the
// arena can be retired wholesale at FreezeL0.

#ifndef RTSI_INDEX_TERM_POSTINGS_H_
#define RTSI_INDEX_TERM_POSTINGS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/window_arena.h"
#include "index/posting.h"

namespace rtsi::index {

class TermPostings {
 public:
  using PostingVec = std::vector<Posting, ArenaAllocator<Posting>>;

  TermPostings() = default;
  /// Unsealed entries allocate from `arena` (nullptr = global heap).
  explicit TermPostings(WindowArena* arena)
      : entries_(ArenaAllocator<Posting>(arena)) {}

  // Movable, not copyable (these live inside index maps).
  TermPostings(TermPostings&&) = default;
  TermPostings& operator=(TermPostings&&) = default;
  TermPostings(const TermPostings&) = delete;
  TermPostings& operator=(const TermPostings&) = delete;

  /// Appends a posting. Only valid while unsealed. Postings must arrive in
  /// non-decreasing `frsh` order (the live-stream arrival order).
  void Append(const Posting& posting);

  /// Builds the popularity and term-frequency sorted permutations and
  /// freezes the object. Idempotent.
  void Seal();

  /// Folds duplicate postings of the same stream into one aggregate
  /// (summed tf, newest frsh, largest pop — the merge fold rule), then
  /// Seal()s. Freezing uses this instead of plain Seal(): the query-side
  /// upper bounds (Bounds(), the traversal Threshold()) read per-posting
  /// maxima and are only sound when each stream owns a single aggregated
  /// posting — true of merge outputs by construction, and of frozen L0
  /// components only via this fold (a live stream can emit several
  /// windows of one term inside one epoch). Idempotent.
  void ConsolidateAndSeal();

  bool sealed() const { return sealed_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  std::span<const Posting> entries() const {
    return {entries_.data(), entries_.size()};
  }

  /// The i-th posting of the list sorted descending by `key`
  /// (i in [0, size())). Requires sealed() for kPopularity and
  /// kTermFrequency; kFreshness works in both states.
  const Posting& At(SortKey key, std::size_t i) const;

  /// Aggregated posting of `stream` within this list: duplicates (multiple
  /// windows of the same stream, possible in frozen-but-unmerged L0 data)
  /// are folded by summing tf and taking the newest frsh / largest pop.
  /// Resolved by binary search over a contiguous by-stream-sorted copy
  /// built at Seal() — the hot random-access path of candidate scoring,
  /// so no double indirection through a permutation array.
  /// Requires sealed(). Returns false when the stream is absent.
  bool AggregateForStream(StreamId stream, Posting& out) const;

  /// Aggregated per-stream postings, ascending stream id, one entry per
  /// distinct stream (the AggregateForStream search array). Requires
  /// sealed(). Skip-header construction reads df and the aggregated
  /// per-stream tf maxima from here.
  const std::vector<Posting>& stream_aggregates() const { return by_stream_; }

  /// Upper bounds over all postings of this term (valid in both states).
  float max_pop() const { return max_pop_; }
  Timestamp max_frsh() const { return max_frsh_; }
  TermFreq max_tf() const { return max_tf_; }

  /// Heap bytes held by this object (entries + permutations).
  std::size_t MemoryBytes() const;

  /// Testing/merge helper: true when the `key` view is sorted descending.
  bool IsSorted(SortKey key) const;

 private:
  // Ascending frsh (arrival) order. Arena-backed while unsealed (when the
  // owning shard passed an arena), migrated to the heap by Seal().
  PostingVec entries_;
  std::vector<std::uint32_t> by_pop_;  // Permutations, descending; sealed.
  std::vector<std::uint32_t> by_tf_;
  // Contiguous aggregated postings, ascending stream id, one entry per
  // distinct stream (duplicates pre-folded at Seal()); sealed only.
  std::vector<Posting> by_stream_;
  bool sealed_ = false;
  float max_pop_ = 0.0f;
  Timestamp max_frsh_ = 0;
  TermFreq max_tf_ = 0;
};

}  // namespace rtsi::index

#endif  // RTSI_INDEX_TERM_POSTINGS_H_
