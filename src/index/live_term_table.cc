#include "index/live_term_table.h"

#include <algorithm>

namespace rtsi::index {

void LiveTermTable::BumpMaxTotal(TermId term, TermFreq total) {
  std::lock_guard<std::mutex> lock(max_mu_);
  TermFreq& current = max_total_[term];
  if (total > current) current = total;
}

TermFreq LiveTermTable::Add(StreamId stream, TermId term, TermFreq tf) {
  TermFreq total;
  {
    TermShard& shard = TermShardFor(term);
    std::lock_guard<std::mutex> lock(shard.mu);
    TermFreq& slot = shard.map[term][stream];
    const bool first = slot == 0;
    slot += tf;
    total = slot;
    if (first) {
      StreamShard& stream_shard = StreamShardFor(stream);
      std::lock_guard<std::mutex> stream_lock(stream_shard.mu);
      stream_shard.terms_of_stream[stream].push_back(term);
    }
  }
  BumpMaxTotal(term, total);
  return total;
}

std::vector<TermFreq> LiveTermTable::AddWindow(
    StreamId stream, const std::vector<TermCount>& terms) {
  std::vector<TermFreq> totals(terms.size(), 0);
  std::vector<TermId> first_seen;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].tf == 0) continue;
    TermShard& shard = TermShardFor(terms[i].term);
    std::lock_guard<std::mutex> lock(shard.mu);
    TermFreq& slot = shard.map[terms[i].term][stream];
    if (slot == 0) first_seen.push_back(terms[i].term);
    slot += terms[i].tf;
    totals[i] = slot;
  }
  if (!first_seen.empty()) {
    StreamShard& stream_shard = StreamShardFor(stream);
    std::lock_guard<std::mutex> lock(stream_shard.mu);
    auto& list = stream_shard.terms_of_stream[stream];
    list.insert(list.end(), first_seen.begin(), first_seen.end());
  }
  {
    std::lock_guard<std::mutex> lock(max_mu_);
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (totals[i] == 0) continue;
      TermFreq& current = max_total_[terms[i].term];
      if (totals[i] > current) current = totals[i];
    }
  }
  return totals;
}

TermFreq LiveTermTable::GetTotal(StreamId stream, TermId term) const {
  const TermShard& shard = TermShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto term_it = shard.map.find(term);
  if (term_it == shard.map.end()) return 0;
  auto stream_it = term_it->second.find(stream);
  return stream_it == term_it->second.end() ? 0 : stream_it->second;
}

bool LiveTermTable::ContainsStream(StreamId stream) const {
  const StreamShard& shard = StreamShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.terms_of_stream.count(stream) > 0;
}

void LiveTermTable::RemoveStream(StreamId stream) {
  std::vector<TermId> terms;
  {
    StreamShard& shard = StreamShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.terms_of_stream.find(stream);
    if (it == shard.terms_of_stream.end()) return;
    terms.swap(it->second);
    shard.terms_of_stream.erase(it);
  }
  for (const TermId term : terms) {
    TermShard& shard = TermShardFor(term);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(term);
    if (it == shard.map.end()) continue;
    it->second.erase(stream);
    if (it->second.empty()) shard.map.erase(it);
  }
}

TermFreq LiveTermTable::GetMaxTotal(TermId term) const {
  std::lock_guard<std::mutex> lock(max_mu_);
  auto it = max_total_.find(term);
  return it == max_total_.end() ? 0 : it->second;
}

std::unordered_map<TermId, TermFreq> LiveTermTable::MaterializeStream(
    StreamId stream) const {
  std::vector<TermId> terms;
  {
    const StreamShard& shard = StreamShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.terms_of_stream.find(stream);
    if (it != shard.terms_of_stream.end()) terms = it->second;
  }
  std::unordered_map<TermId, TermFreq> out;
  out.reserve(terms.size());
  for (const TermId term : terms) {
    const TermFreq total = GetTotal(stream, term);
    if (total > 0) out[term] = total;
  }
  return out;
}

std::size_t LiveTermTable::num_streams() const {
  std::size_t total = 0;
  for (const StreamShard& shard : stream_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.terms_of_stream.size();
  }
  return total;
}

std::size_t LiveTermTable::num_entries() const {
  std::size_t total = 0;
  for (const TermShard& shard : term_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [term, streams] : shard.map) total += streams.size();
  }
  return total;
}

std::size_t LiveTermTable::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const TermShard& shard : term_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.map.bucket_count() * sizeof(void*);
    for (const auto& [term, streams] : shard.map) {
      bytes += sizeof(term) + 2 * sizeof(void*) +
               streams.bucket_count() * sizeof(void*) +
               streams.size() *
                   (sizeof(StreamId) + sizeof(TermFreq) + 2 * sizeof(void*));
    }
  }
  for (const StreamShard& shard : stream_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.terms_of_stream.bucket_count() * sizeof(void*);
    for (const auto& [stream, terms] : shard.terms_of_stream) {
      bytes += sizeof(stream) + 2 * sizeof(void*) +
               terms.capacity() * sizeof(TermId);
    }
  }
  {
    std::lock_guard<std::mutex> lock(max_mu_);
    bytes += max_total_.bucket_count() * sizeof(void*) +
             max_total_.size() *
                 (sizeof(TermId) + sizeof(TermFreq) + 2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace rtsi::index
