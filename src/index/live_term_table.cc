#include "index/live_term_table.h"

#include <algorithm>

namespace rtsi::index {

namespace {

// One heap-footprint formula for every unordered_map in this file: the
// bucket-pointer array plus, per node, the payload and the node header
// (forward link + cached hash). The old code applied a different formula
// to each map, so the shard totals and max_total_ drifted apart; keeping
// a single helper makes the accounting uniform by construction.
std::size_t MapBytes(std::size_t bucket_count, std::size_t nodes,
                     std::size_t payload_per_node) {
  return bucket_count * sizeof(void*) +
         nodes * (payload_per_node + 2 * sizeof(void*));
}

// The table spreads load over 64 shards, so per-shard slabs stay small;
// nodes are ~32 B, giving ~500 entries per slab before a new one is cut.
constexpr std::size_t kLiveTableSlabBytes = 16 * 1024;

}  // namespace

LiveTermTable::LiveTermTable(bool use_arena,
                             std::shared_ptr<MemoryTracker> tracker) {
  if (!use_arena) return;
  for (TermShard& shard : term_shards_) {
    shard.arena = std::make_unique<WindowArena>(kLiveTableSlabBytes, tracker);
  }
}

TermFreq& LiveTermTable::SlotFor(TermShard& shard, TermId term,
                                 StreamId stream) {
  auto it = shard.map.find(term);
  if (it == shard.map.end()) {
    it = shard.map
             .emplace(term, StreamTfMap(StreamTfAlloc(shard.arena.get())))
             .first;
  }
  return it->second[stream];
}

void LiveTermTable::RegisterTerms(StreamId stream,
                                  const std::vector<TermId>& terms) {
  if (terms.empty()) return;
  StreamShard& shard = StreamShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& list = shard.terms_of_stream[stream];
  list.insert(list.end(), terms.begin(), terms.end());
}

void LiveTermTable::BumpMaxTotal(TermId term, TermFreq total) {
  std::lock_guard<std::mutex> lock(max_mu_);
  TermFreq& current = max_total_[term];
  if (total > current) current = total;
}

TermFreq LiveTermTable::Add(StreamId stream, TermId term, TermFreq tf) {
  TermFreq total;
  bool first;
  {
    TermShard& shard = TermShardFor(term);
    std::lock_guard<std::mutex> lock(shard.mu);
    TermFreq& slot = SlotFor(shard, term, stream);
    first = slot == 0;
    slot += tf;
    total = slot;
  }
  // Registration happens after the term lock is released — the same
  // disjoint protocol as AddWindow. Taking the stream lock nested inside
  // the term lock (as this function originally did) ordered the two
  // families term-before-stream here while every other path keeps them
  // disjoint, which is one inverted acquisition away from deadlock.
  if (first) RegisterTerms(stream, {term});
  BumpMaxTotal(term, total);
  return total;
}

std::vector<TermFreq> LiveTermTable::AddWindow(
    StreamId stream, const std::vector<TermCount>& terms) {
  std::vector<TermFreq> totals(terms.size(), 0);
  std::vector<TermId> first_seen;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].tf == 0) continue;
    TermShard& shard = TermShardFor(terms[i].term);
    std::lock_guard<std::mutex> lock(shard.mu);
    TermFreq& slot = SlotFor(shard, terms[i].term, stream);
    if (slot == 0) first_seen.push_back(terms[i].term);
    slot += terms[i].tf;
    totals[i] = slot;
  }
  RegisterTerms(stream, first_seen);
  {
    std::lock_guard<std::mutex> lock(max_mu_);
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (totals[i] == 0) continue;
      TermFreq& current = max_total_[terms[i].term];
      if (totals[i] > current) current = totals[i];
    }
  }
  return totals;
}

TermFreq LiveTermTable::GetTotal(StreamId stream, TermId term) const {
  const TermShard& shard = TermShardFor(term);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto term_it = shard.map.find(term);
  if (term_it == shard.map.end()) return 0;
  auto stream_it = term_it->second.find(stream);
  return stream_it == term_it->second.end() ? 0 : stream_it->second;
}

bool LiveTermTable::ContainsStream(StreamId stream) const {
  const StreamShard& shard = StreamShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.terms_of_stream.count(stream) > 0;
}

void LiveTermTable::RemoveStream(StreamId stream) {
  // Loop until the stream entry stays gone. An insert racing one pass can
  // (a) re-register the stream after we swapped its term list out — the
  // re-created entry is caught by the next pass — or (b) re-create a
  // counter for a term we already erased, which re-registers the stream
  // (every counter creation is followed by a registration) and is thus
  // also caught by a later pass. Without the loop, case (a) left an
  // orphan (term → stream) counter that no RemoveStream would ever visit.
  while (true) {
    std::vector<TermId> terms;
    {
      StreamShard& shard = StreamShardFor(stream);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.terms_of_stream.find(stream);
      if (it == shard.terms_of_stream.end()) return;
      terms.swap(it->second);
      shard.terms_of_stream.erase(it);
    }
    for (const TermId term : terms) {
      TermShard& shard = TermShardFor(term);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(term);
      if (it == shard.map.end()) continue;
      it->second.erase(stream);
      if (it->second.empty()) shard.map.erase(it);
    }
  }
}

TermFreq LiveTermTable::GetMaxTotal(TermId term) const {
  std::lock_guard<std::mutex> lock(max_mu_);
  auto it = max_total_.find(term);
  return it == max_total_.end() ? 0 : it->second;
}

std::unordered_map<TermId, TermFreq> LiveTermTable::MaterializeStream(
    StreamId stream) const {
  std::vector<TermId> terms;
  {
    const StreamShard& shard = StreamShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.terms_of_stream.find(stream);
    if (it != shard.terms_of_stream.end()) terms = it->second;
  }
  std::unordered_map<TermId, TermFreq> out;
  out.reserve(terms.size());
  for (const TermId term : terms) {
    const TermFreq total = GetTotal(stream, term);
    if (total > 0) out[term] = total;
  }
  return out;
}

std::size_t LiveTermTable::num_streams() const {
  std::size_t total = 0;
  for (const StreamShard& shard : stream_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.terms_of_stream.size();
  }
  return total;
}

std::size_t LiveTermTable::num_entries() const {
  std::size_t total = 0;
  for (const TermShard& shard : term_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [term, streams] : shard.map) total += streams.size();
  }
  return total;
}

std::size_t LiveTermTable::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const TermShard& shard : term_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Outer map: TermId -> StreamTfMap object, always on the heap.
    bytes += MapBytes(shard.map.bucket_count(), shard.map.size(),
                      sizeof(TermId) + sizeof(StreamTfMap));
    if (shard.arena != nullptr) {
      // Every inner-map node and bucket array was carved from the shard
      // arena, so its in-use counter *is* the inner maps' footprint —
      // report that instead of re-deriving an estimate that could drift
      // from the arena's own accounting. Slab waste (owned - in-use) is
      // deliberately not attributed here; it is observable exactly via
      // ArenaStats()/the kLiveArena tracker gauge.
      bytes += shard.arena->allocated_bytes();
    } else {
      for (const auto& [term, streams] : shard.map) {
        bytes += MapBytes(streams.bucket_count(), streams.size(),
                          sizeof(StreamId) + sizeof(TermFreq));
      }
    }
  }
  for (const StreamShard& shard : stream_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += MapBytes(shard.terms_of_stream.bucket_count(),
                      shard.terms_of_stream.size(),
                      sizeof(StreamId) + sizeof(std::vector<TermId>));
    for (const auto& [stream, terms] : shard.terms_of_stream) {
      bytes += terms.capacity() * sizeof(TermId);
    }
  }
  {
    std::lock_guard<std::mutex> lock(max_mu_);
    bytes += MapBytes(max_total_.bucket_count(), max_total_.size(),
                      sizeof(TermId) + sizeof(TermFreq));
  }
  return bytes;
}

WindowArena::Stats LiveTermTable::ArenaStats() const {
  WindowArena::Stats total;
  for (const TermShard& shard : term_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.arena != nullptr) total += shard.arena->GetStats();
  }
  return total;
}

}  // namespace rtsi::index
