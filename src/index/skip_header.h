// Immutable per-component skip header: a split-block Bloom filter over the
// component's TermId set plus a sorted array of per-term bound summaries.
//
// Built exactly once, when a component seals (FreezeL0) or is produced by a
// merge, and never mutated afterwards — the same lifecycle as the component
// itself, so a pinned IndexView can consult headers without synchronization.
// The query planner uses the Bloom filter to prove query terms absent
// (skipping the component outright) and the summaries to compute per-term
// score ceilings without touching the posting maps.
//
// Determinism contract: Build() is a pure function of the (term, summary)
// set, and Serialize() of the built header is byte-identical to Serialize()
// of a Deserialize()d copy. Snapshot restore relies on this: a v3 file with
// no persisted header rebuilds one that matches what a v4 file would have
// carried.

#ifndef RTSI_INDEX_SKIP_HEADER_H_
#define RTSI_INDEX_SKIP_HEADER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace rtsi::index {

/// Per-term bounds captured at seal/merge time.
///
/// `max_tf` is the maximum *aggregated* per-stream term frequency (a
/// frozen-L0 component may hold several postings of one stream for a term;
/// the summary bounds their sum), so it upper-bounds the tf a query
/// traversal can ever accumulate for one stream in this component.
/// `max_frsh` is the frozen snapshot maximum; planners must clamp it with
/// the component's live FreshnessCeiling cell (see exec/traversal.h).
struct TermSummary {
  TermId term = 0;
  float max_pop = 0.0f;     // Max popularity snapshot across postings.
  Timestamp max_frsh = 0;   // Max freshness timestamp (frozen).
  TermFreq max_tf = 0;      // Max aggregated per-stream term frequency.
  std::uint32_t df = 0;     // Distinct streams holding the term.
  std::uint32_t postings = 0;  // Stored posting count (>= df when frozen).
};

/// Split-block Bloom filter: one 64-byte cache-line block per probe, eight
/// single-bit probes within the block, ~10 bits per key. False positives
/// only cost a wasted summary lookup; there are no false negatives.
class SplitBlockBloom {
 public:
  static constexpr std::size_t kWordsPerBlock = 8;  // 8 x u64 = 64 bytes.

  SplitBlockBloom() = default;

  /// Sizes the filter for `num_keys` keys. Must be called before Insert.
  void Reset(std::size_t num_keys);

  void Insert(TermId key);

  /// False negatives are impossible; false positives occur at ~1% rate.
  bool MayContain(TermId key) const;

  std::size_t num_blocks() const { return words_.size() / kWordsPerBlock; }
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Restores a filter from serialized words (block count implied).
  void Adopt(std::vector<std::uint64_t> words) { words_ = std::move(words); }

 private:
  std::vector<std::uint64_t> words_;
};

/// The complete immutable header for one sealed component.
class SkipHeader {
 public:
  SkipHeader() = default;

  /// Builds from per-term summaries (any order; sorted internally by term).
  /// Deterministic: equal summary sets produce byte-identical headers.
  static SkipHeader Build(std::vector<TermSummary> summaries);

  /// True if the term may be present (Bloom filter consultation).
  bool MayContain(TermId term) const { return bloom_.MayContain(term); }

  /// Exact lookup (binary search); nullptr when the term is absent — which
  /// after a positive MayContain() means a Bloom false positive.
  const TermSummary* Find(TermId term) const;

  std::size_t num_terms() const { return summaries_.size(); }
  const std::vector<TermSummary>& summaries() const { return summaries_; }

  /// Heap bytes held by this header (charged to MemCategory::kSkipHeader).
  std::size_t MemoryBytes() const;

  /// Deterministic byte encoding (varints + raw little-endian words).
  std::vector<std::uint8_t> Serialize() const;

  /// Decodes Serialize() output. Returns false on malformed input.
  static bool Deserialize(const std::uint8_t* data, std::size_t size,
                          SkipHeader& out);

 private:
  std::vector<TermSummary> summaries_;  // Sorted ascending by term.
  SplitBlockBloom bloom_;
};

}  // namespace rtsi::index

#endif  // RTSI_INDEX_SKIP_HEADER_H_
