#include "index/compressed_postings.h"

#include <cstring>

#include "common/varint.h"
#include "index/huffman.h"

namespace rtsi::index {
namespace {

// Serialized columns, all varint unless noted:
//   count
//   stream ids   (zigzag delta vs previous)
//   frsh         (delta vs previous; arrival order is non-decreasing)
//   pop          (raw float32 bits, little endian, 4 bytes each)
//   tf           (varint)
std::vector<std::uint8_t> Serialize(const TermPostings& postings) {
  const auto& entries = postings.entries();
  std::vector<std::uint8_t> bytes;
  bytes.reserve(entries.size() * 8 + 8);
  PutVarint64(bytes, entries.size());

  std::int64_t prev_stream = 0;
  for (const Posting& p : entries) {
    PutVarint64(bytes,
                ZigZagEncode(static_cast<std::int64_t>(p.stream) -
                             prev_stream));
    prev_stream = static_cast<std::int64_t>(p.stream);
  }
  Timestamp prev_frsh = 0;
  for (const Posting& p : entries) {
    PutVarint64(bytes, static_cast<std::uint64_t>(p.frsh - prev_frsh));
    prev_frsh = p.frsh;
  }
  for (const Posting& p : entries) {
    std::uint32_t bits;
    std::memcpy(&bits, &p.pop, sizeof(bits));
    bytes.push_back(static_cast<std::uint8_t>(bits));
    bytes.push_back(static_cast<std::uint8_t>(bits >> 8));
    bytes.push_back(static_cast<std::uint8_t>(bits >> 16));
    bytes.push_back(static_cast<std::uint8_t>(bits >> 24));
  }
  for (const Posting& p : entries) {
    PutVarint64(bytes, p.tf);
  }
  return bytes;
}

}  // namespace

CompressedTermPostings CompressedTermPostings::FromPostings(
    const TermPostings& postings) {
  CompressedTermPostings out;
  out.count_ = postings.size();
  out.max_pop_ = postings.max_pop();
  out.max_frsh_ = postings.max_frsh();
  out.max_tf_ = postings.max_tf();
  out.blob_ = HuffmanEncode(Serialize(postings));
  out.blob_.shrink_to_fit();
  return out;
}

TermPostings CompressedTermPostings::Decode() const {
  return DecodeBlob(blob_);
}

TermPostings CompressedTermPostings::DecodeBlob(
    const std::vector<std::uint8_t>& blob) {
  TermPostings postings;
  std::vector<std::uint8_t> bytes;
  if (!HuffmanDecode(blob, bytes)) return postings;

  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!GetVarint64(bytes.data(), bytes.size(), pos, count)) return postings;

  std::vector<Posting> entries(count);
  std::int64_t prev_stream = 0;
  for (auto& p : entries) {
    std::uint64_t zz = 0;
    if (!GetVarint64(bytes.data(), bytes.size(), pos, zz)) return postings;
    prev_stream += ZigZagDecode(zz);
    p.stream = static_cast<StreamId>(prev_stream);
  }
  Timestamp prev_frsh = 0;
  for (auto& p : entries) {
    std::uint64_t delta = 0;
    if (!GetVarint64(bytes.data(), bytes.size(), pos, delta)) {
      return postings;
    }
    prev_frsh += static_cast<Timestamp>(delta);
    p.frsh = prev_frsh;
  }
  for (auto& p : entries) {
    if (pos + 4 > bytes.size()) return postings;
    std::uint32_t bits = static_cast<std::uint32_t>(bytes[pos]) |
                         (static_cast<std::uint32_t>(bytes[pos + 1]) << 8) |
                         (static_cast<std::uint32_t>(bytes[pos + 2]) << 16) |
                         (static_cast<std::uint32_t>(bytes[pos + 3]) << 24);
    std::memcpy(&p.pop, &bits, sizeof(bits));
    pos += 4;
  }
  for (auto& p : entries) {
    std::uint64_t tf = 0;
    if (!GetVarint64(bytes.data(), bytes.size(), pos, tf)) return postings;
    p.tf = static_cast<TermFreq>(tf);
  }

  for (const Posting& p : entries) postings.Append(p);
  postings.Seal();
  return postings;
}

}  // namespace rtsi::index
