#include "exec/pipeline.h"

#include <algorithm>

namespace rtsi::exec {

std::vector<WorkUnit> MakeWorkUnits(
    const std::vector<SelectedComponent>& comps, std::size_t threads) {
  std::size_t total_postings = 0;
  for (const SelectedComponent& sc : comps) {
    total_postings += sc.component->num_postings();
  }
  std::vector<WorkUnit> units;
  units.reserve(comps.size());
  for (std::size_t c = 0; c < comps.size(); ++c) {
    // Slices proportional to the component's posting share, so the
    // per-worker critical path tracks total_work / threads instead of
    // max(component).
    std::size_t slices = 1;
    if (threads > 1 && total_postings > 0) {
      const std::size_t share =
          (comps[c].component->num_postings() * threads +
           total_postings / 2) /
          total_postings;
      slices = std::clamp<std::size_t>(share, 1, threads);
    }
    for (std::size_t s = 0; s < slices; ++s) {
      units.push_back({c, static_cast<std::uint32_t>(s),
                       static_cast<std::uint32_t>(slices)});
    }
  }
  return units;
}

}  // namespace rtsi::exec
