// Accumulator: per-candidate score assembly for the pipeline.
//
// ComputeScore() is the pure Equation-1 fold (pop/rel/frsh from the
// stream table + a ready tf-idf sum); SealedScorer is the fast-path
// candidate policy for sealed components, shared verbatim by the
// sequential walk and every parallel-executor worker — admission screen,
// then the discovering-term-first ("ti-first") tf-idf accumulation that
// keeps fast, explain, and parallel totals bit-identical.
//
// Everything here is header-only so the per-posting work stays
// monomorphic; only the per-candidate sink calls are virtual.

#ifndef RTSI_EXEC_ACCUMULATOR_H_
#define RTSI_EXEC_ACCUMULATOR_H_

#include <unordered_set>
#include <vector>

#include "core/explain.h"
#include "core/query_scratch.h"
#include "core/scorer.h"
#include "core/search_index.h"
#include "exec/query_plan.h"
#include "exec/selector.h"
#include "exec/sink.h"
#include "exec/traversal.h"
#include "index/stream_info_table.h"

namespace rtsi::exec {

/// Slack absorbing the different floating-point summation order of the
/// admission screen's relevance bound vs the exact relevance (see
/// DESIGN.md §6f).
inline constexpr double kScreenSlack = 1e-9;

/// Decomposed Equation-1 score of one candidate.
struct PartScores {
  double pop = 0.0, rel = 0.0, frsh = 0.0, total = 0.0;
};

/// Pure Equation-1 scoring from the tf-idf sum; false when the stream is
/// deleted/unknown or rejected by the plan's filter. Safe to call from
/// any worker (sharded-mutex table reads, const scorer).
inline bool ComputeScore(const QueryPlan& plan, const core::Scorer& scorer,
                         const index::StreamInfoTable& streams,
                         StreamId stream, double tfidf_sum,
                         PartScores& out) {
  index::StreamInfo info;
  if (!streams.Get(stream, info)) return false;  // Deleted or unknown.
  if (plan.filter.live_only && !info.live) return false;
  if (info.frsh < plan.filter.min_frsh) return false;
  out.pop = scorer.PopScore(info.pop_count, plan.max_pop);
  out.rel = scorer.RelScore(tfidf_sum, static_cast<int>(plan.num_terms()));
  out.frsh = scorer.FrshScore(info.frsh, plan.now);
  out.total = scorer.Combine(out.pop, out.rel, out.frsh);
  return true;
}

/// Candidate admission for sealed traversal: the per-component epoch
/// dedup plus the phase-1/2 exact-total set (read-only during phase 3 —
/// it marks streams whose totals are already exact).
class CandidateGate {
 public:
  CandidateGate(core::QueryScratch& scratch, StreamId max_stream,
                const std::unordered_set<StreamId>& scored)
      : seen_(scratch, max_stream), scored_(&scored) {}

  void NextComponent() { seen_.NextComponent(); }

  /// True the first time `stream` is admitted within the current
  /// component and it was not already scored exactly in phase 1/2.
  bool Admit(StreamId stream) {
    if (!seen_.Insert(stream)) return false;
    return scored_->count(stream) == 0;
  }

 private:
  core::StreamSeenFilter seen_;
  const std::unordered_set<StreamId>* scored_;
};

/// Fast-path sealed-component candidate policy (no explain): filter,
/// admission screen against the sink's threshold, ti-first accumulation,
/// offer. One instance per executing thread; the screen ingredients are
/// shared read-only.
class SealedScorer {
 public:
  SealedScorer(const QueryPlan& plan, const core::Scorer& scorer,
               const index::StreamInfoTable& streams,
               const std::unordered_set<StreamId>& scored,
               const std::vector<double>& screen_tfidf, bool screen_base,
               core::QueryScratch& scratch, StreamId max_stream,
               ResultSink& sink)
      : plan_(&plan),
        scorer_(&scorer),
        streams_(&streams),
        screen_tfidf_(&screen_tfidf),
        screen_base_(screen_base),
        scratch_(&scratch),
        gate_(scratch, max_stream, scored),
        sink_(&sink),
        nq_(plan.num_terms()),
        num_terms_(static_cast<int>(plan.num_terms())) {}

  std::vector<index::Posting>& round() { return scratch_->round; }
  std::vector<std::uint32_t>& round_terms() { return scratch_->round_terms; }

  void BeginComponent(const SelectedComponent& sc) {
    gate_.NextComponent();
    screen_ = screen_base_ && sc.screen;
    rel_total_ = sc.rel_total;
    other_tfidf_ = screen_tfidf_->data() + sc.order * nq_;
  }

  bool Admit(StreamId stream) { return gate_.Admit(stream); }

  void Candidate(const Traversal& traversal, StreamId stream,
                 std::size_t ti, core::QueryStats& qs) {
    index::StreamInfo info;
    if (!streams_->Get(stream, info)) return;  // Deleted.
    if (plan_->filter.live_only && !info.live) return;
    if (info.frsh < plan_->filter.min_frsh) return;
    const double pop_score = scorer_->PopScore(info.pop_count, plan_->max_pop);
    const double frsh_score = scorer_->FrshScore(info.frsh, plan_->now);
    // The screen prunes against the sink's threshold, which only ever
    // rises; a screened candidate is strictly below a lower bound of the
    // final k-th score, so neither traversal order nor worker timing can
    // change the result set (same argument as the bound pruning).
    if (screen_ &&
        sink_->Threshold() >
            scorer_->Combine(pop_score, rel_total_, frsh_score) +
                kScreenSlack) {
      ++qs.candidates_screened;  // No term lookup was paid.
      return;
    }
    // The discovering term's aggregate first (one lookup the old path
    // repeated), then a tighter screen with its actual tf before paying
    // for the remaining terms.
    index::Posting agg;
    if (!traversal.Find(ti, stream, agg)) return;
    double tfidf_sum = scorer_->TermTfIdf(agg.tf, plan_->idfs[ti]);
    if (screen_ && nq_ > 1 &&
        sink_->Threshold() >
            scorer_->Combine(
                pop_score,
                scorer_->RelScore(tfidf_sum + other_tfidf_[ti], num_terms_),
                frsh_score) +
                kScreenSlack) {
      ++qs.candidates_screened;
      return;
    }
    for (std::size_t i = 0; i < nq_; ++i) {
      if (i == ti) continue;
      index::Posting found;
      if (traversal.Find(i, stream, found)) {
        tfidf_sum += scorer_->TermTfIdf(found.tf, plan_->idfs[i]);
      }
    }
    const double rel_score = scorer_->RelScore(tfidf_sum, num_terms_);
    sink_->Offer(stream,
                 scorer_->Combine(pop_score, rel_score, frsh_score));
    ++qs.candidates_scored;
  }

 private:
  const QueryPlan* plan_;
  const core::Scorer* scorer_;
  const index::StreamInfoTable* streams_;
  const std::vector<double>* screen_tfidf_;
  bool screen_base_;
  core::QueryScratch* scratch_;
  CandidateGate gate_;
  ResultSink* sink_;
  std::size_t nq_;
  int num_terms_;
  // Per-component state (BeginComponent).
  bool screen_ = false;
  double rel_total_ = 0.0;
  const double* other_tfidf_ = nullptr;
};

/// Exact-phase candidate policy (live table + L0): score from the already
/// exact tf-idf sum and offer. The explain path substitutes its own
/// policy to additionally record breakdowns.
class ExactScorer {
 public:
  ExactScorer(const QueryPlan& plan, const core::Scorer& scorer,
              const index::StreamInfoTable& streams, ResultSink& sink,
              core::QueryStats& qs)
      : plan_(&plan),
        scorer_(&scorer),
        streams_(&streams),
        sink_(&sink),
        qs_(&qs) {}

  void Candidate(StreamId stream, double tfidf_sum, const TermFreq*,
                 core::ScoreBreakdown::Source) {
    PartScores parts;
    if (!ComputeScore(*plan_, *scorer_, *streams_, stream, tfidf_sum,
                      parts)) {
      return;
    }
    sink_->Offer(stream, parts.total);
    ++qs_->candidates_scored;
  }

 private:
  const QueryPlan* plan_;
  const core::Scorer* scorer_;
  const index::StreamInfoTable* streams_;
  ResultSink* sink_;
  core::QueryStats* qs_;
};

}  // namespace rtsi::exec

#endif  // RTSI_EXEC_ACCUMULATOR_H_
