#include "exec/sink.h"

namespace rtsi::exec {

void FoldStats(core::QueryStats& total, const core::QueryStats& part) {
  total.components_visited += part.components_visited;
  total.components_pruned += part.components_pruned;
  total.components_skipped += part.components_skipped;
  total.bloom_false_positives += part.bloom_false_positives;
  total.postings_scanned += part.postings_scanned;
  total.candidates_scored += part.candidates_scored;
  total.candidates_screened += part.candidates_screened;
  total.terminated_early = total.terminated_early || part.terminated_early;
}

std::vector<core::ScoredStream> GatherPartials(
    const std::vector<std::vector<core::ScoredStream>>& partials, int k) {
  TopKSink sink(k);
  for (const auto& partial : partials) {
    for (const core::ScoredStream& r : partial) sink.Offer(r.stream, r.score);
  }
  return sink.SortedResults();
}

}  // namespace rtsi::exec
