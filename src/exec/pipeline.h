// Pipeline drivers: the traversal loops of Algorithm 3, templated over a
// candidate policy so the per-posting inner loop stays monomorphic (no
// virtual or std::function dispatch per posting — only per-candidate sink
// calls are virtual).
//
// A policy provides:
//   std::vector<index::Posting>& round();          // this thread's buffers
//   std::vector<std::uint32_t>& round_terms();
//   void BeginComponent(const SelectedComponent&);
//   bool Admit(StreamId);                          // dedup / already-exact
//   void Candidate(const Traversal&, StreamId, std::size_t term_index,
//                  core::QueryStats&);
//
// RunSealedSequential drives the single-threaded walk (fast, explain, and
// LSII policies); RunSealedWorker is one executor worker claiming
// stream-sliced work units off a shared atomic cursor. RunLiveTablePhase /
// RunL0Phase are the exact-total phases that precede the sealed walk.

#ifndef RTSI_EXEC_PIPELINE_H_
#define RTSI_EXEC_PIPELINE_H_

#include <atomic>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/explain.h"
#include "core/query_scratch.h"
#include "core/scorer.h"
#include "core/search_index.h"
#include "exec/query_plan.h"
#include "exec/selector.h"
#include "exec/sink.h"
#include "exec/traversal.h"
#include "index/live_term_table.h"
#include "lsm/lsm_tree.h"

namespace rtsi::exec {

/// Pruning comparison: RTSI drops strictly below the threshold (a dropped
/// candidate can never re-enter via the stream-id tie-break); the LSII
/// baseline also drops ties. -infinity thresholds (sink not yet full)
/// never prune under either rule.
inline bool Prunes(double threshold, double bound, bool if_equal) {
  return if_equal ? threshold >= bound : threshold > bound;
}

/// Phase 1: score every live-table stream touching a query term (the
/// table is term-keyed, so only matching streams are visited). Their
/// totals are exact regardless of how many components hold their
/// postings; afterwards, any unscored candidate is single-component.
template <typename ExactPolicy>
void RunLiveTablePhase(const QueryPlan& plan, const core::Scorer& scorer,
                       const index::LiveTermTable& live_terms,
                       core::QueryScratch& scratch,
                       std::unordered_set<StreamId>& scored,
                       ExactPolicy& exact) {
  std::vector<StreamId>& table_matches = scratch.table_matches;
  for (const TermId term : plan.terms) {
    live_terms.ForEachStreamOfTerm(term, [&](StreamId stream, TermFreq) {
      table_matches.push_back(stream);
    });
  }
  const std::size_t nq = plan.num_terms();
  std::vector<TermFreq>& tfs = scratch.tfs;
  for (const StreamId stream : table_matches) {
    if (!scored.insert(stream).second) continue;
    double tfidf_sum = 0.0;
    tfs.assign(nq, 0);
    for (std::size_t i = 0; i < nq; ++i) {
      tfs[i] = live_terms.GetTotal(stream, plan.terms[i]);
      tfidf_sum += scorer.TermTfIdf(tfs[i], plan.idfs[i]);
    }
    exact.Candidate(stream, tfidf_sum, tfs.data(),
                    core::ScoreBreakdown::Source::kLiveTable);
  }
}

/// Phase 2: full scan of I0 (it is small by construction). Accumulates
/// per-stream tf sums into a slot-indexed flat matrix (stride nq), exact
/// for streams whose postings are L0-only. Returns the number of
/// candidates scored here (explain's l0_candidates).
template <typename ExactPolicy>
std::size_t RunL0Phase(const QueryPlan& plan, const core::Scorer& scorer,
                       lsm::LsmTree& tree, core::QueryScratch& scratch,
                       std::unordered_set<StreamId>& scored,
                       ExactPolicy& exact, core::QueryStats& qs) {
  const std::size_t nq = plan.num_terms();
  auto& l0_slot = scratch.l0_slot;
  auto& l0_tf = scratch.l0_tf;
  auto& l0_streams = scratch.l0_streams;
  for (std::size_t i = 0; i < nq; ++i) {
    tree.WithL0Term(plan.terms[i], [&](const index::TermPostings* postings) {
      if (postings == nullptr) return;
      qs.postings_scanned += postings->size();
      for (const index::Posting& p : postings->entries()) {
        auto [it, inserted] = l0_slot.try_emplace(
            p.stream, static_cast<std::uint32_t>(l0_streams.size()));
        if (inserted) {
          l0_streams.push_back(p.stream);
          l0_tf.resize(l0_tf.size() + nq, 0);
        }
        l0_tf[static_cast<std::size_t>(it->second) * nq + i] += p.tf;
      }
    });
  }
  std::size_t l0_candidates = 0;
  for (std::size_t slot = 0; slot < l0_streams.size(); ++slot) {
    const StreamId stream = l0_streams[slot];
    if (!scored.insert(stream).second) continue;
    const TermFreq* stream_tfs = l0_tf.data() + slot * nq;
    double tfidf_sum = 0.0;
    for (std::size_t i = 0; i < nq; ++i) {
      tfidf_sum += scorer.TermTfIdf(stream_tfs[i], plan.idfs[i]);
    }
    ++l0_candidates;
    exact.Candidate(stream, tfidf_sum, stream_tfs,
                    core::ScoreBreakdown::Source::kL0Scan);
  }
  return l0_candidates;
}

/// Phase 3, single-threaded: walk the selected components best bound
/// first (Algorithm 3's sc-top pruning, strengthened by processing in
/// bound order), cut each traversal when the per-round threshold falls
/// below the sink's k-th score.
template <typename Policy>
void RunSealedSequential(const QueryPlan& plan, const core::Scorer& scorer,
                         const std::vector<SelectedComponent>& comps,
                         Policy& policy, ResultSink& sink,
                         core::QueryStats& qs,
                         core::QueryExplanation* explain) {
  std::vector<index::Posting>& round = policy.round();
  std::vector<std::uint32_t>& round_terms = policy.round_terms();
  for (std::size_t c = 0; c < comps.size(); ++c) {
    if (plan.use_bound &&
        Prunes(sink.Threshold(), comps[c].bound, plan.prune_if_equal)) {
      qs.components_pruned += comps.size() - c;
      qs.terminated_early = true;
      break;
    }
    ++qs.components_visited;
    if (explain != nullptr) {
      explain->components[comps[c].explain_slot].visited = true;
    }
    Traversal traversal(*comps[c].component, plan.terms);
    policy.BeginComponent(comps[c]);
    while (traversal.NextRound(round, round_terms)) {
      for (std::size_t ri = 0; ri < round.size(); ++ri) {
        const index::Posting& p = round[ri];
        if (!policy.Admit(p.stream)) continue;
        policy.Candidate(traversal, p.stream, round_terms[ri], qs);
      }
      qs.postings_scanned += round.size();
      round.clear();
      round_terms.clear();
      if (plan.use_bound) {
        const double threshold = sink.Threshold();
        // A -infinity threshold (sink not yet full) can never cut; skip
        // the exp()-heavy Threshold() computation entirely.
        if (std::isfinite(threshold)) {
          const double tau =
              traversal.Threshold(scorer, plan.idfs, plan.now, plan.max_pop,
                                  comps[c].frsh_ceiling, plan.bound_mode);
          if (Prunes(threshold, tau, plan.prune_if_equal)) {
            qs.terminated_early = true;
            if (explain != nullptr) {
              explain->components[comps[c].explain_slot].terminated_early =
                  true;
            }
            break;
          }
        }
      }
    }
    if (explain != nullptr) {
      explain->components[comps[c].explain_slot].postings_yielded =
          traversal.postings_yielded();
    }
  }
}

/// One stream-sliced unit of parallel work: slice `slice` of
/// `num_slices` over component `comp` (index into the selected vector).
struct WorkUnit {
  std::size_t comp;
  std::uint32_t slice;
  std::uint32_t num_slices;
};

/// Splits the selected components into stream-sliced work units. A
/// settled LSM concentrates most postings in the bottom component, so
/// component-granular fan-out alone is bounded by that straggler (Amdahl
/// at the component level); large components get slices proportional to
/// their posting share. Deterministic (integer arithmetic on snapshot
/// sizes), hence identical across runs.
std::vector<WorkUnit> MakeWorkUnits(
    const std::vector<SelectedComponent>& comps, std::size_t threads);

/// Phase 3, one executor worker: claim work units off the shared cursor
/// (so the best bounds are traversed first), resolve only candidates in
/// the unit's stream slice, prune cooperatively against the shared
/// sink's published threshold. Slices partition the stream space, so
/// every candidate is still scored by exactly one worker and the
/// bit-identity argument is untouched. Stats that describe a component
/// (visited/pruned/postings) are counted on slice 0 only, keeping their
/// sequential meaning.
template <typename Policy>
void RunSealedWorker(const QueryPlan& plan, const core::Scorer& scorer,
                     const std::vector<SelectedComponent>& comps,
                     const std::vector<WorkUnit>& units,
                     std::atomic<std::size_t>& next_unit, ResultSink& sink,
                     Policy& policy, core::QueryStats& wqs) {
  std::vector<index::Posting>& round = policy.round();
  std::vector<std::uint32_t>& round_terms = policy.round_terms();
  while (true) {
    const std::size_t u = next_unit.fetch_add(1, std::memory_order_relaxed);
    if (u >= units.size()) break;
    const WorkUnit unit = units[u];
    const std::size_t c = unit.comp;
    if (plan.use_bound &&
        Prunes(sink.Threshold(), comps[c].bound, plan.prune_if_equal)) {
      if (unit.slice == 0) {
        ++wqs.components_pruned;
        wqs.terminated_early = true;
      }
      continue;
    }
    if (unit.slice == 0) ++wqs.components_visited;
    Traversal traversal(*comps[c].component, plan.terms);
    policy.BeginComponent(comps[c]);
    round.clear();
    round_terms.clear();
    bool cut_off = false;
    // The per-round Threshold() bound is exp()-heavy and a round yields
    // only ~3 postings per term, so checking every round dominates a
    // slice's duplicated scan cost. Checking every kBoundCheckInterval
    // rounds only scans deeper before cutting off; with the sound
    // kGlobalPop ceilings that can never change the result set.
    constexpr std::uint32_t kBoundCheckInterval = 8;
    std::uint32_t rounds_since_check = 0;
    while (!cut_off && traversal.NextRound(round, round_terms)) {
      for (std::size_t ri = 0; ri < round.size(); ++ri) {
        const index::Posting& p = round[ri];
        if (unit.num_slices > 1 &&
            p.stream % unit.num_slices != unit.slice) {
          continue;
        }
        if (!policy.Admit(p.stream)) continue;
        policy.Candidate(traversal, p.stream, round_terms[ri], wqs);
      }
      // Slices > 0 re-scan postings that slice 0 also walks; count only
      // slice 0 so the stat keeps its sequential meaning (distinct
      // postings the traversal reached).
      if (unit.slice == 0) wqs.postings_scanned += round.size();
      round.clear();
      round_terms.clear();
      if (plan.use_bound && ++rounds_since_check >= kBoundCheckInterval) {
        rounds_since_check = 0;
        const double threshold = sink.Threshold();
        if (std::isfinite(threshold) &&
            Prunes(threshold,
                   traversal.Threshold(scorer, plan.idfs, plan.now,
                                       plan.max_pop, comps[c].frsh_ceiling,
                                       plan.bound_mode),
                   plan.prune_if_equal)) {
          wqs.terminated_early = true;
          cut_off = true;
        }
      }
    }
  }
}

}  // namespace rtsi::exec

#endif  // RTSI_EXEC_PIPELINE_H_
