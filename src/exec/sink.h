// ResultSink: the pluggable tail of the query-execution pipeline.
//
// Every query path accumulates candidates through this interface —
// sequential queries into a TopKSink, the parallel executor into a
// SharedTopKSink, shard scatter-gather folds per-shard partials through a
// TopKSink, and future standing queries can implement a push sink without
// touching the traversal.
//
// Sink contract (what the pruning soundness arguments rely on):
//  * Offer() keeps the best score per stream under the deterministic
//    total order (score desc, stream asc) — re-offering a retained stream
//    with a worse partial score must not displace the better one.
//  * Threshold() is a monotone non-decreasing lower bound on the final
//    k-th score, and is -infinity until k distinct candidates have been
//    offered. Operators compare bounds against it to prune/screen; a
//    candidate dropped strictly below it can never have entered the final
//    top-k, whatever the traversal order.
//  * SortedResults() returns rank order under the same total order.
//  * SharedTopKSink's Offer()/Threshold() are thread-safe; TopKSink's are
//    not (single-consumer paths only).

#ifndef RTSI_EXEC_SINK_H_
#define RTSI_EXEC_SINK_H_

#include <vector>

#include "core/search_index.h"
#include "core/top_k.h"

namespace rtsi::exec {

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Offers one scored candidate (keep-best-per-stream).
  virtual void Offer(StreamId stream, double score) = 0;

  /// Monotone lower bound on the final k-th score; -infinity until k
  /// distinct candidates have been offered.
  virtual double Threshold() const = 0;

  /// Results in (score desc, stream asc) rank order.
  virtual std::vector<core::ScoredStream> SortedResults() const = 0;
};

/// Single-threaded top-k sink over core::TopKHeap.
class TopKSink : public ResultSink {
 public:
  explicit TopKSink(int k) : heap_(k) {}

  void Offer(StreamId stream, double score) override {
    heap_.Offer(stream, score);
  }
  double Threshold() const override { return heap_.KthScore(); }
  std::vector<core::ScoredStream> SortedResults() const override {
    return heap_.SortedResults();
  }

  const core::TopKHeap& heap() const { return heap_; }

 private:
  core::TopKHeap heap_;
};

/// Thread-safe sink for the parallel executor: mutex-guarded heap with a
/// lock-free published threshold workers read for cooperative pruning.
class SharedTopKSink : public ResultSink {
 public:
  explicit SharedTopKSink(int k) : shared_(k) {}

  void Offer(StreamId stream, double score) override {
    shared_.Offer(stream, score);
  }
  double Threshold() const override { return shared_.ThresholdScore(); }
  std::vector<core::ScoredStream> SortedResults() const override {
    return shared_.SortedResults();
  }

 private:
  core::SharedTopK shared_;
};

/// Folds one worker's / one shard's QueryStats into `total`.
void FoldStats(core::QueryStats& total, const core::QueryStats& part);

/// Scatter-gather merge: offers every per-shard partial top-k to one
/// deterministic sink. Each stream lives in exactly one shard and every
/// shard scores with the corpus-global statistics, so the gathered top-k
/// is exactly what a single index over the union would return.
std::vector<core::ScoredStream> GatherPartials(
    const std::vector<std::vector<core::ScoredStream>>& partials, int k);

}  // namespace rtsi::exec

#endif  // RTSI_EXEC_SINK_H_
