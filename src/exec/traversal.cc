#include "exec/traversal.h"

#include <algorithm>

namespace rtsi::exec {

using core::BoundMode;
using core::Scorer;
using index::Posting;
using index::SortKey;

double ComponentBound(const Scorer& scorer,
                      const std::vector<PerTermBound>& terms, Timestamp now,
                      std::uint64_t max_pop_count, Timestamp frsh_ceiling,
                      BoundMode mode) {
  bool any_present = false;
  std::uint64_t pop_bound_count = 0;
  Timestamp frsh_bound = 0;
  double tfidf_sum = 0.0;
  for (const PerTermBound& term : terms) {
    if (!term.bounds.present) continue;
    any_present = true;
    pop_bound_count =
        std::max(pop_bound_count,
                 static_cast<std::uint64_t>(term.bounds.max_pop));
    frsh_bound = std::max(frsh_bound, term.bounds.max_frsh);
    const TermFreq tf_bound =
        std::max(term.bounds.max_tf, term.tf_correction);
    tfidf_sum += scorer.TermTfIdf(tf_bound, term.idf);
  }
  if (!any_present) return 0.0;
  if (mode == BoundMode::kGlobalPop) {
    pop_bound_count = max_pop_count;
    // Candidates are scored with their *live* freshness, which can exceed
    // every frsh this component stored (the stream stayed active after
    // sealing); a live-freshness ceiling keeps the bound sound. The
    // per-component residency-bumped ceiling is tight — only streams
    // actually resident here can raise it — where the table-global
    // maximum would let one recently-active stream drag every
    // component's bound to ~now.
    frsh_bound = std::max(frsh_bound, frsh_ceiling);
  }

  const double pop_score = scorer.PopScore(pop_bound_count, max_pop_count);
  const double frsh_score = scorer.FrshScore(frsh_bound, now);
  const double rel_score =
      scorer.RelScore(tfidf_sum, static_cast<int>(terms.size()));
  return scorer.Combine(pop_score, rel_score, frsh_score);
}

Traversal::Traversal(const index::InvertedIndex& component,
                     const std::vector<TermId>& terms) {
  cursors_.reserve(terms.size());
  for (const TermId term : terms) {
    TermCursor cursor;
    cursor.view = component.View(term);
    cursor.exhausted = !cursor.view || cursor.view->empty();
    cursors_.push_back(std::move(cursor));
  }
}

bool Traversal::NextRound(std::vector<Posting>& out) {
  return NextRoundImpl(out, nullptr);
}

bool Traversal::NextRound(std::vector<Posting>& out,
                          std::vector<std::uint32_t>& term_of) {
  return NextRoundImpl(out, &term_of);
}

bool Traversal::NextRoundImpl(std::vector<Posting>& out,
                              std::vector<std::uint32_t>* term_of) {
  bool yielded = false;
  for (std::size_t ti = 0; ti < cursors_.size(); ++ti) {
    TermCursor& cursor = cursors_[ti];
    if (cursor.exhausted) continue;
    const std::size_t n = cursor.view->size();
    for (int key = 0; key < index::kNumSortKeys; ++key) {
      std::size_t& pos = cursor.pos[key];
      if (pos < n) {
        out.push_back(cursor.view->At(static_cast<SortKey>(key), pos));
        if (term_of != nullptr) {
          term_of->push_back(static_cast<std::uint32_t>(ti));
        }
        ++pos;
        ++postings_yielded_;
        yielded = true;
      }
    }
    // A term is exhausted once any of its lists has been fully consumed:
    // every posting appears in all three lists, so a drained list implies
    // every posting of the term has been yielded at least once.
    for (int key = 0; key < index::kNumSortKeys; ++key) {
      if (cursor.pos[key] >= n) {
        cursor.exhausted = true;
        break;
      }
    }
  }
  return yielded;
}

double Traversal::Threshold(const Scorer& scorer,
                            const std::vector<double>& idfs, Timestamp now,
                            std::uint64_t max_pop_count,
                            Timestamp frsh_ceiling, BoundMode mode) const {
  bool any_active = false;
  std::uint64_t pop_bound_count = 0;
  Timestamp frsh_bound = 0;
  double tfidf_sum = 0.0;
  for (std::size_t i = 0; i < cursors_.size(); ++i) {
    const TermCursor& cursor = cursors_[i];
    if (cursor.exhausted) continue;
    any_active = true;
    const Posting& pop_head =
        cursor.view->At(SortKey::kPopularity, cursor.pos[0]);
    const Posting& frsh_head =
        cursor.view->At(SortKey::kFreshness, cursor.pos[1]);
    const Posting& tf_head =
        cursor.view->At(SortKey::kTermFrequency, cursor.pos[2]);
    pop_bound_count = std::max(
        pop_bound_count, static_cast<std::uint64_t>(pop_head.pop));
    frsh_bound = std::max(frsh_bound, frsh_head.frsh);
    tfidf_sum += scorer.TermTfIdf(tf_head.tf, idfs[i]);
  }
  if (!any_active) return 0.0;
  if (mode == BoundMode::kGlobalPop) {
    pop_bound_count = max_pop_count;
    // The component's live-freshness ceiling (see ComponentBound).
    frsh_bound = std::max(frsh_bound, frsh_ceiling);
  }

  const double pop_score = scorer.PopScore(pop_bound_count, max_pop_count);
  const double frsh_score = scorer.FrshScore(frsh_bound, now);
  const double rel_score =
      scorer.RelScore(tfidf_sum, static_cast<int>(cursors_.size()));
  return scorer.Combine(pop_score, rel_score, frsh_score);
}

bool Traversal::Find(std::size_t term_index, StreamId stream,
                     Posting& out) const {
  const TermCursor& cursor = cursors_[term_index];
  if (!cursor.view || cursor.view->empty()) return false;
  return cursor.view->AggregateForStream(stream, out);
}

}  // namespace rtsi::exec
