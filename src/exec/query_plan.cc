#include "exec/query_plan.h"

#include <algorithm>

namespace rtsi::exec {

void BuildQueryPlan(const std::vector<TermId>& terms,
                    const core::DocumentFrequencyTable& df, int k,
                    Timestamp now, const core::QueryFilter& filter,
                    std::uint64_t max_pop, core::BoundMode bound_mode,
                    bool use_bound, bool prune_if_equal,
                    std::vector<TermId>& term_set, QueryPlan& plan) {
  std::vector<TermId>& q = plan.terms;
  q.clear();
  term_set.clear();
  q.reserve(terms.size());
  term_set.reserve(terms.size());
  for (const TermId term : terms) {
    const auto it = std::lower_bound(term_set.begin(), term_set.end(), term);
    if (it != term_set.end() && *it == term) continue;
    term_set.insert(it, term);
    q.push_back(term);
  }
  plan.idfs.assign(q.size(), 0.0);
  for (std::size_t i = 0; i < q.size(); ++i) plan.idfs[i] = df.Idf(q[i]);
  plan.filter = filter;
  plan.k = k;
  plan.now = now;
  plan.max_pop = max_pop;
  plan.bound_mode = bound_mode;
  plan.use_bound = use_bound;
  plan.prune_if_equal = prune_if_equal;
}

}  // namespace rtsi::exec
