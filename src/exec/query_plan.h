// QueryPlan: everything Algorithm 3 resolves once per query before any
// posting is touched — the deduplicated term list, per-term idfs, the
// result filter, the popularity normalizer, and the pruning regime. The
// plan is immutable during execution and carries no buffers, so it can be
// re-entered: a standing query builds its plan once and re-executes it
// against later index states (the ROADMAP's continuous-query seam), and
// fuzzy term expansion only has to rewrite `terms` before the build.

#ifndef RTSI_EXEC_QUERY_PLAN_H_
#define RTSI_EXEC_QUERY_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "core/config.h"
#include "core/doc_freq.h"
#include "core/search_index.h"

namespace rtsi::exec {

/// One query's resolved inputs, shared verbatim by every operator and by
/// every worker of the parallel executor (capture-once semantics: all
/// workers prune and score against the same max_pop / bound mode).
struct QueryPlan {
  std::vector<TermId> terms;   // Deduplicated, first-seen order.
  std::vector<double> idfs;    // Parallel to `terms`.
  core::QueryFilter filter;
  int k = 0;
  Timestamp now = 0;
  std::uint64_t max_pop = 0;
  core::BoundMode bound_mode = core::BoundMode::kSnapshot;
  bool use_bound = true;
  /// Pruning comparison against a bound: RTSI prunes strictly-below only
  /// (a dropped candidate can never re-enter via the stream-id tie-break,
  /// which keeps results identical under any traversal order); the LSII
  /// baseline keeps the paper baseline's >= cut.
  bool prune_if_equal = false;

  std::size_t num_terms() const { return terms.size(); }

  bool empty() const { return terms.empty() || k <= 0; }
};

/// Builds `plan` from a raw term list: deduplicates preserving first-seen
/// order (membership via the caller's sorted flat set `term_set` — queries
/// hold a handful of terms, so binary search in a contiguous vector beats
/// both hashing and a quadratic scan) and resolves idfs from `df`. The
/// scalar knobs are copied as given; `term_set` and the plan's vectors are
/// reused across queries when the caller recycles them (QueryScratch).
void BuildQueryPlan(const std::vector<TermId>& terms,
                    const core::DocumentFrequencyTable& df, int k,
                    Timestamp now, const core::QueryFilter& filter,
                    std::uint64_t max_pop, core::BoundMode bound_mode,
                    bool use_bound, bool prune_if_equal,
                    std::vector<TermId>& term_set, QueryPlan& plan);

}  // namespace rtsi::exec

#endif  // RTSI_EXEC_QUERY_PLAN_H_
