// ComponentSelector: the planning operator over a pinned component set.
//
// For each sealed component it resolves per-term bounds (through the skip
// header's Bloom filter + summaries when consulted, else the posting-map
// Bounds()), computes the sc-top upper bound of Algorithm 3, drops
// components proven term-free or bound-free, precomputes the admission
// screen's relevance ceilings, and returns the survivors sorted best
// bound first. Summary bounds are >= the posting-map bounds by
// construction, so switching lookups never tightens a bound — pruning
// stays lossless.

#ifndef RTSI_EXEC_SELECTOR_H_
#define RTSI_EXEC_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/explain.h"
#include "core/scorer.h"
#include "core/search_index.h"
#include "exec/query_plan.h"
#include "exec/traversal.h"
#include "index/inverted_index.h"

namespace rtsi::exec {

/// One component that survived selection, with everything the traversal
/// drivers need. Bound and ceiling are captured at selection time (same
/// capture-once semantics as max_pop, so all executor workers agree).
struct SelectedComponent {
  const index::InvertedIndex* component = nullptr;
  double bound = 0.0;
  Timestamp frsh_ceiling = 0;  // Live-freshness ceiling for Threshold().
  double rel_total = 0.0;   // Screen: bound on this component's rel part.
  std::size_t order = 0;    // Snapshot position: deterministic sort
                            // tie-break and the component's screen row.
  std::size_t explain_slot = 0;
  bool screen = false;      // Header summaries available for screening.
};

/// Per-path selection knobs (the RTSI planner and the LSII baseline make
/// different soundness assumptions; see each field).
struct SelectorOptions {
  /// Resolve term bounds through the skip headers (Bloom + summaries) and
  /// precompute admission-screen ingredients. Off = posting-map Bounds().
  bool consult_headers = false;
  /// Use the component's residency-bumped FreshnessCeiling cell when it
  /// has one. The LSII baseline turns this off: its components carry no
  /// residency bookkeeping, so only the fallback is sound for it.
  bool use_component_ceiling = true;
  /// Ceiling when the component has no cell (or cells are not used).
  /// RTSI passes the stream table's max_frsh() via `fallback_ceiling`;
  /// LSII passes `now` (its workload clock is monotone).
  Timestamp fallback_ceiling = 0;
  /// Drop components whose bound is not strictly positive (RTSI). The
  /// LSII baseline keeps them and only drops proven term-free components,
  /// preserving its historical walk order.
  bool require_positive_bound = true;
  /// Break bound ties by snapshot position (deterministic total order —
  /// required for the executor's bit-identity). LSII keeps its original
  /// unstable bound-only sort.
  bool order_tie_break = true;
  /// Per-query-term tf headroom for multi-component streams, parallel to
  /// the plan's terms; null = 0 per term (the consolidation invariant).
  /// LSII passes its global per-term max totals.
  const std::vector<TermFreq>* tf_corrections = nullptr;
};

/// Reused buffers for selection (views into QueryScratch or locals).
struct SelectorScratch {
  std::vector<PerTermBound>& per_term;
  std::vector<double>& screen_own;
  /// Out: component-major, stride num_terms; entry [c*nq+i] bounds the
  /// tf-idf mass the terms *other than* i can contribute inside the
  /// snapshot's component c (indexed by SelectedComponent::order).
  std::vector<double>& screen_tfidf;
};

/// Plans over `components` (a pinned view's snapshot): per-component
/// bounds, Bloom/bound skips (counted into `qs`), screen ingredients, and
/// the bound-descending sort. When `explain` is non-null every component
/// gets a ComponentExplanation slot, pushed before any skip decision.
std::vector<SelectedComponent> SelectComponents(
    const QueryPlan& plan, const core::Scorer& scorer,
    const std::vector<std::shared_ptr<const index::InvertedIndex>>&
        components,
    const SelectorOptions& options, SelectorScratch scratch,
    core::QueryStats& qs, core::QueryExplanation* explain);

}  // namespace rtsi::exec

#endif  // RTSI_EXEC_SELECTOR_H_
