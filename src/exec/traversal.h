// The Traversal operator of the query-execution pipeline: component
// upper bounds (the sc-top of Algorithm 3) and the threshold-algorithm
// walk of a sealed component's three sorted inverted lists. Shared by
// every query path (RTSI sequential/parallel/explain and the
// extended-LSII baseline); moved here from core/query_util.

#ifndef RTSI_EXEC_TRAVERSAL_H_
#define RTSI_EXEC_TRAVERSAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/scorer.h"
#include "index/inverted_index.h"

namespace rtsi::exec {

/// Per-query-term inputs for a component bound.
struct PerTermBound {
  index::TermBounds bounds;   // Maxima of the term inside the component.
  double idf = 0.0;
  TermFreq tf_correction = 0;  // Extra tf headroom for multi-component
                               // streams (0 when the owner guarantees
                               // consolidated totals; LSII uses its global
                               // per-term max total).
};

/// Largest possible score of any stream whose postings for the query terms
/// lie in a component with these maxima. Returns 0 when no term is
/// present. `frsh_ceiling` is a ceiling on the *live* freshness of every
/// stream resident in the component (per-component FreshnessCeiling cell;
/// the stream table's global max_frsh() is the sound fallback, and the
/// LSII baseline passes `now`); kGlobalPop mode substitutes it for the
/// component's stored freshness maxima, which go stale once a stream
/// posts again after the component sealed. kSnapshot ignores it.
double ComponentBound(const core::Scorer& scorer,
                      const std::vector<PerTermBound>& terms, Timestamp now,
                      std::uint64_t max_pop_count, Timestamp frsh_ceiling,
                      core::BoundMode mode);

/// Round-based sorted access over one sealed component (Algorithm 3 lines
/// 10-17): each round yields the next unchecked posting from each of the
/// three sorted lists of every query term ("GetTop3"), and Threshold()
/// bounds the score of every posting not yet yielded.
class Traversal {
 public:
  Traversal(const index::InvertedIndex& component,
            const std::vector<TermId>& terms);

  /// Appends this round's postings (up to 3 per live term) to `out`.
  /// Returns false when every term is exhausted (nothing appended).
  bool NextRound(std::vector<index::Posting>& out);

  /// As above; additionally appends, per appended posting, the index into
  /// the constructor's `terms` of the term whose list yielded it, so the
  /// caller can start candidate scoring from the discovering term's
  /// aggregate without re-deriving it.
  bool NextRound(std::vector<index::Posting>& out,
                 std::vector<std::uint32_t>& term_of);

  /// Upper bound on the score of all unchecked postings, from the current
  /// cursor values. `idfs` aligns with the constructor's `terms`;
  /// `frsh_ceiling` is the component's live-freshness ceiling (see
  /// ComponentBound).
  double Threshold(const core::Scorer& scorer,
                   const std::vector<double>& idfs, Timestamp now,
                   std::uint64_t max_pop_count, Timestamp frsh_ceiling,
                   core::BoundMode mode) const;

  /// Random access used when scoring a candidate discovered via another
  /// term: aggregated posting of `stream` for terms[i], if present.
  bool Find(std::size_t term_index, StreamId stream,
            index::Posting& out) const;

  std::size_t postings_yielded() const { return postings_yielded_; }

 private:
  struct TermCursor {
    index::TermPostingsView view;
    std::size_t pos[index::kNumSortKeys] = {0, 0, 0};
    bool exhausted = false;
  };

  bool NextRoundImpl(std::vector<index::Posting>& out,
                     std::vector<std::uint32_t>* term_of);

  std::vector<TermCursor> cursors_;
  std::size_t postings_yielded_ = 0;
};

}  // namespace rtsi::exec

#endif  // RTSI_EXEC_TRAVERSAL_H_
