#include "exec/selector.h"

#include <algorithm>

#include "index/skip_header.h"

namespace rtsi::exec {

std::vector<SelectedComponent> SelectComponents(
    const QueryPlan& plan, const core::Scorer& scorer,
    const std::vector<std::shared_ptr<const index::InvertedIndex>>&
        components,
    const SelectorOptions& options, SelectorScratch scratch,
    core::QueryStats& qs, core::QueryExplanation* explain) {
  const std::vector<TermId>& q = plan.terms;
  const std::vector<double>& idfs = plan.idfs;
  const std::size_t nq = q.size();
  const int num_terms = static_cast<int>(nq);

  std::vector<double>& screen_tfidf = scratch.screen_tfidf;
  screen_tfidf.assign(components.size() * nq, 0.0);
  std::vector<double>& screen_own = scratch.screen_own;
  std::vector<PerTermBound>& per_term = scratch.per_term;

  std::vector<SelectedComponent> selected;
  selected.reserve(components.size());
  for (std::size_t ci = 0; ci < components.size(); ++ci) {
    const auto& component = components[ci];
    const index::SkipHeader* header =
        options.consult_headers ? component->skip_header() : nullptr;
    per_term.assign(nq, PerTermBound{});
    bool any_present = false;
    if (header != nullptr) {
      for (std::size_t i = 0; i < nq; ++i) {
        per_term[i].idf = idfs[i];
        per_term[i].tf_correction = 0;  // Consolidation invariant.
        if (!header->MayContain(q[i])) continue;
        const index::TermSummary* s = header->Find(q[i]);
        if (s == nullptr) {
          ++qs.bloom_false_positives;  // Cost: one binary search. Sound.
          continue;
        }
        per_term[i].bounds =
            index::TermBounds{s->max_pop, s->max_frsh, s->max_tf, true};
        any_present = true;
      }
    } else {
      for (std::size_t i = 0; i < nq; ++i) {
        per_term[i].bounds = component->Bounds(q[i]);
        per_term[i].idf = idfs[i];
        per_term[i].tf_correction =
            options.tf_corrections != nullptr ? (*options.tf_corrections)[i]
                                              : 0;
        any_present = any_present || per_term[i].bounds.present;
      }
    }
    // Per-component ceiling: only streams resident here can have raised
    // it, so it is far tighter than the table-global fallback — which
    // stays the sound choice for components without a cell (restored
    // from old snapshots, or built by tests via bare CombineComponents).
    const Timestamp frsh_ceiling =
        options.use_component_ceiling && component->has_ceiling()
            ? component->LiveFrshCeiling()
            : options.fallback_ceiling;
    const double bound = ComponentBound(scorer, per_term, plan.now,
                                        plan.max_pop, frsh_ceiling,
                                        plan.bound_mode);
    std::size_t slot = 0;
    if (explain != nullptr) {
      core::ComponentExplanation ce;
      ce.level = component->level();
      ce.num_postings = component->num_postings();
      ce.upper_bound = bound;
      ce.skipped = header != nullptr && !any_present;
      slot = explain->components.size();
      explain->components.push_back(ce);
    }
    if (header != nullptr && !any_present) {
      // The Bloom filter *proved* every query term absent (a summary miss
      // after a positive filter is counted above, not here): the
      // component is skipped without touching its posting maps.
      ++qs.components_skipped;
      continue;
    }
    if (options.require_positive_bound) {
      if (!(bound > 0.0)) continue;
    } else if (!any_present) {
      continue;  // LSII: only proven term-free components are dropped.
    }
    double rel_total = 0.0;
    if (header != nullptr) {
      // Admission-screen ingredients. own[i] bounds term i's tf-idf
      // contribution inside this component; the row of screen_tfidf
      // holds, per term, the mass the *other* terms can add (direct
      // ascending-order sums, matching the scoring loop's accumulation
      // order so the bound dominates the actual sum even under floating-
      // point rounding — a tiny slack at the compare covers the rest).
      screen_own.assign(nq, 0.0);
      for (std::size_t i = 0; i < nq; ++i) {
        if (per_term[i].bounds.present) {
          screen_own[i] =
              scorer.TermTfIdf(per_term[i].bounds.max_tf, idfs[i]);
        }
      }
      double sum_own = 0.0;
      for (std::size_t i = 0; i < nq; ++i) sum_own += screen_own[i];
      double* other = screen_tfidf.data() + ci * nq;
      for (std::size_t i = 0; i < nq; ++i) {
        double o = 0.0;
        for (std::size_t j = 0; j < nq; ++j) {
          if (j != i) o += screen_own[j];
        }
        other[i] = o;
      }
      rel_total = scorer.RelScore(sum_own, num_terms);
    }
    selected.push_back({component.get(), bound, frsh_ceiling, rel_total, ci,
                        slot, header != nullptr});
  }
  if (options.order_tie_break) {
    std::sort(selected.begin(), selected.end(),
              [](const SelectedComponent& a, const SelectedComponent& b) {
                if (a.bound != b.bound) return a.bound > b.bound;
                return a.order < b.order;
              });
  } else {
    std::sort(selected.begin(), selected.end(),
              [](const SelectedComponent& a, const SelectedComponent& b) {
                return a.bound > b.bound;
              });
  }
  return selected;
}

}  // namespace rtsi::exec
