// Simulated speech-to-text with a configurable word error rate.
//
// Stands in for the Baidu Yuyin service the paper used: given the true word
// sequence of an audio window, emits a transcript with injected
// substitution / deletion / insertion errors. The error budget is split
// 60/20/20 (typical ASR error profiles), and substitutions/insertions draw
// from a caller-provided confusion vocabulary.

#ifndef RTSI_ASR_TRANSCRIBER_H_
#define RTSI_ASR_TRANSCRIBER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rtsi::asr {

struct TranscriberConfig {
  double word_error_rate = 0.08;  // Modern commercial ASR is ~5-10%.
  double substitution_share = 0.6;
  double deletion_share = 0.2;
  // Insertions take the remaining share.
};

class Transcriber {
 public:
  /// `confusion_word(rng)` supplies a random plausible word for
  /// substitutions and insertions.
  Transcriber(const TranscriberConfig& config,
              std::function<std::string(Rng&)> confusion_word);

  /// Applies the error model to `truth`.
  std::vector<std::string> Transcribe(const std::vector<std::string>& truth,
                                      Rng& rng) const;

  const TranscriberConfig& config() const { return config_; }

 private:
  TranscriberConfig config_;
  std::function<std::string(Rng&)> confusion_word_;
};

}  // namespace rtsi::asr

#endif  // RTSI_ASR_TRANSCRIBER_H_
