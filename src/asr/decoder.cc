#include "asr/decoder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace rtsi::asr {
namespace {

constexpr double kLogFloor = -1e9;

// Framewise best phones via Viterbi over the phone-bigram model.
std::vector<PhonemeId> ViterbiPath(
    const std::vector<std::vector<ScoredPhone>>& frame_scores,
    const DecoderConfig& config) {
  const int num_frames = static_cast<int>(frame_scores.size());
  const int num_phones = PhonemeCount();
  const PhoneBigramModel& lm = *config.phone_lm;

  // Dense per-frame emission log-probs.
  std::vector<std::vector<double>> emission(
      num_frames, std::vector<double>(num_phones, kLogFloor));
  for (int t = 0; t < num_frames; ++t) {
    for (const ScoredPhone& s : frame_scores[t]) {
      emission[t][s.phone] =
          s.posterior > 0 ? std::log(s.posterior) : kLogFloor;
    }
  }

  std::vector<std::vector<double>> dp(
      num_frames, std::vector<double>(num_phones, kLogFloor));
  std::vector<std::vector<int>> back(
      num_frames, std::vector<int>(num_phones, 0));
  for (int p = 0; p < num_phones; ++p) {
    dp[0][p] = config.lm_weight * lm.LogInitial(static_cast<PhonemeId>(p)) +
               emission[0][p];
  }
  for (int t = 1; t < num_frames; ++t) {
    // Hoist the best previous state for the switch case.
    int best_prev = 0;
    for (int q = 1; q < num_phones; ++q) {
      if (dp[t - 1][q] > dp[t - 1][best_prev]) best_prev = q;
    }
    for (int p = 0; p < num_phones; ++p) {
      // Self loop.
      double best = dp[t - 1][p] + config.self_loop_logprob;
      int from = p;
      // Switching: evaluate all predecessors (the LM term is per-pair).
      for (int q = 0; q < num_phones; ++q) {
        if (q == p) continue;
        const double score =
            dp[t - 1][q] + config.switch_logprob +
            config.lm_weight * lm.LogTransition(static_cast<PhonemeId>(q),
                                                static_cast<PhonemeId>(p));
        if (score > best) {
          best = score;
          from = q;
        }
      }
      (void)best_prev;
      dp[t][p] = best + emission[t][p];
      back[t][p] = from;
    }
  }

  std::vector<PhonemeId> path(num_frames);
  int state = 0;
  for (int p = 1; p < num_phones; ++p) {
    if (dp[num_frames - 1][p] > dp[num_frames - 1][state]) state = p;
  }
  for (int t = num_frames - 1; t >= 0; --t) {
    path[t] = static_cast<PhonemeId>(state);
    state = back[t][state];
  }
  return path;
}

}  // namespace

LatticeDecoder::LatticeDecoder(const audio::MfccExtractor* extractor,
                               const AcousticModel* model,
                               const DecoderConfig& config)
    : extractor_(extractor), model_(model), config_(config) {}

PhoneticLattice LatticeDecoder::Decode(const audio::PcmBuffer& pcm) const {
  PhoneticLattice lattice;
  const std::vector<audio::MfccFrame> frames = extractor_->Extract(pcm);
  if (frames.empty()) return lattice;

  const double shift_seconds = extractor_->config().frame_shift_seconds;

  // Classify every frame once.
  std::vector<std::vector<ScoredPhone>> frame_scores;
  frame_scores.reserve(frames.size());
  for (const auto& frame : frames) {
    frame_scores.push_back(model_->Classify(frame));
  }

  // Framewise phone decisions: Viterbi smoothing or plain argmax.
  std::vector<PhonemeId> framewise(frames.size());
  if (config_.use_viterbi && config_.phone_lm != nullptr) {
    framewise = ViterbiPath(frame_scores, config_);
  } else {
    for (std::size_t f = 0; f < frames.size(); ++f) {
      framewise[f] = frame_scores[f].front().phone;
    }
  }

  // Group consecutive frames with the same phone into runs, accumulating
  // hypothesis mass.
  struct Run {
    PhonemeId best;
    std::size_t first_frame;
    std::size_t num_frames;
    std::map<PhonemeId, double> mass;
  };
  std::vector<Run> runs;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    if (runs.empty() || runs.back().best != framewise[f]) {
      runs.push_back({framewise[f], f, 0, {}});
    }
    Run& run = runs.back();
    ++run.num_frames;
    const auto& scored = frame_scores[f];
    const int keep = std::min<int>(config_.max_hypotheses_per_segment + 1,
                                   static_cast<int>(scored.size()));
    for (int i = 0; i < keep; ++i) {
      run.mass[scored[i].phone] += scored[i].posterior;
    }
  }

  // Drop micro-runs (transition frames between phones).
  std::vector<Run> kept;
  for (auto& run : runs) {
    if (run.num_frames >= config_.min_run_frames) {
      kept.push_back(std::move(run));
    } else if (!kept.empty()) {
      kept.back().num_frames += run.num_frames;  // Absorb into neighbour.
    }
  }

  for (const Run& run : kept) {
    LatticeSegment segment;
    segment.start_seconds = run.first_frame * shift_seconds;
    segment.duration_seconds = run.num_frames * shift_seconds;

    std::vector<PhoneHypothesis> hyps;
    double total = 0.0;
    for (const auto& [phone, mass] : run.mass) total += mass;
    for (const auto& [phone, mass] : run.mass) {
      hyps.push_back({phone, total > 0 ? mass / total : 0.0});
    }
    std::sort(hyps.begin(), hyps.end(),
              [](const PhoneHypothesis& a, const PhoneHypothesis& b) {
                return a.posterior > b.posterior;
              });
    if (hyps.size() >
        static_cast<std::size_t>(config_.max_hypotheses_per_segment)) {
      hyps.resize(config_.max_hypotheses_per_segment);
    }
    // The run's decoded phone must lead the hypothesis list.
    for (std::size_t i = 0; i < hyps.size(); ++i) {
      if (hyps[i].phone == run.best) {
        std::rotate(hyps.begin(), hyps.begin() + i, hyps.begin() + i + 1);
        break;
      }
    }
    // Viterbi can pick a phone whose averaged mass fell outside the kept
    // set; ensure it is represented.
    if (hyps.empty() || hyps.front().phone != run.best) {
      hyps.insert(hyps.begin(), {run.best, total > 0 ? 0.0 : 1.0});
      if (hyps.size() >
          static_cast<std::size_t>(config_.max_hypotheses_per_segment)) {
        hyps.resize(config_.max_hypotheses_per_segment);
      }
    }
    segment.hypotheses = std::move(hyps);
    lattice.AddSegment(std::move(segment));
  }
  return lattice;
}

}  // namespace rtsi::asr
