// Phonetic lattices: the sound-based representation indexed by RTSI.
//
// A lattice is a sequence of time segments; each segment carries a ranked
// set of phone hypotheses with posteriors. Indexable "lattice units" are
// phone n-grams drawn from the hypotheses (the paper indexes lattice units
// as the terms of the sound LSM-tree).

#ifndef RTSI_ASR_LATTICE_H_
#define RTSI_ASR_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "asr/phoneme.h"

namespace rtsi::asr {

struct PhoneHypothesis {
  PhonemeId phone = 0;
  double posterior = 0.0;  // In (0, 1]; hypotheses in a segment sum <= 1.
};

struct LatticeSegment {
  // Ranked best-first; non-empty in a well-formed lattice.
  std::vector<PhoneHypothesis> hypotheses;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

class PhoneticLattice {
 public:
  void AddSegment(LatticeSegment segment) {
    segments_.push_back(std::move(segment));
  }

  const std::vector<LatticeSegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }
  std::size_t size() const { return segments_.size(); }

  /// Best (rank-0) phone sequence.
  std::vector<PhonemeId> BestPath() const;

  /// Indexable lattice units: phone n-grams of order `n` over the best path,
  /// plus n-grams substituting each segment's second hypothesis when its
  /// posterior is >= `alt_threshold`. Each unit is rendered as a string
  /// like "s_ih_ng" suitable for the term dictionary.
  std::vector<std::string> ExtractUnits(int n, double alt_threshold) const;

 private:
  std::vector<LatticeSegment> segments_;
};

/// Renders a phone n-gram as "p1_p2_...".
std::string UnitName(const std::vector<PhonemeId>& phones);

}  // namespace rtsi::asr

#endif  // RTSI_ASR_LATTICE_H_
