#include "asr/phone_lm.h"

#include <cmath>

namespace rtsi::asr {

PhoneBigramModel::PhoneBigramModel()
    : n_(PhonemeCount()),
      bigram_counts_(static_cast<std::size_t>(n_) * n_, 0),
      initial_counts_(n_, 0),
      log_transition_(static_cast<std::size_t>(n_) * n_,
                      -std::log(static_cast<double>(n_))),
      log_initial_(n_, -std::log(static_cast<double>(n_))) {}

void PhoneBigramModel::AddSequence(const std::vector<PhonemeId>& phones) {
  if (phones.empty()) return;
  ++initial_counts_[phones[0]];
  for (std::size_t i = 1; i < phones.size(); ++i) {
    ++bigram_counts_[static_cast<std::size_t>(phones[i - 1]) * n_ +
                     phones[i]];
    ++total_bigrams_;
  }
}

void PhoneBigramModel::Finalize(double smoothing) {
  for (int from = 0; from < n_; ++from) {
    double row_total = 0.0;
    for (int to = 0; to < n_; ++to) {
      row_total += static_cast<double>(
                       bigram_counts_[static_cast<std::size_t>(from) * n_ +
                                      to]) +
                   smoothing;
    }
    for (int to = 0; to < n_; ++to) {
      const double count =
          static_cast<double>(
              bigram_counts_[static_cast<std::size_t>(from) * n_ + to]) +
          smoothing;
      log_transition_[static_cast<std::size_t>(from) * n_ + to] =
          std::log(count / row_total);
    }
  }
  double initial_total = 0.0;
  for (int p = 0; p < n_; ++p) {
    initial_total += static_cast<double>(initial_counts_[p]) + smoothing;
  }
  for (int p = 0; p < n_; ++p) {
    log_initial_[p] = std::log(
        (static_cast<double>(initial_counts_[p]) + smoothing) /
        initial_total);
  }
}

double PhoneBigramModel::LogTransition(PhonemeId from, PhonemeId to) const {
  return log_transition_[static_cast<std::size_t>(from) * n_ + to];
}

double PhoneBigramModel::LogInitial(PhonemeId phone) const {
  return log_initial_[phone];
}

}  // namespace rtsi::asr
