// Prototype-based acoustic model over MFCC frames.
//
// For each phone in the inventory, a prototype MFCC vector is computed by
// synthesizing the phone's steady state and averaging its MFCC frames.
// Frames are scored against prototypes by (negative) squared Euclidean
// distance; posteriors come from a softmax over distances.

#ifndef RTSI_ASR_ACOUSTIC_MODEL_H_
#define RTSI_ASR_ACOUSTIC_MODEL_H_

#include <vector>

#include "asr/phoneme.h"
#include "audio/mfcc.h"

namespace rtsi::asr {

struct ScoredPhone {
  PhonemeId phone = 0;
  double posterior = 0.0;
};

class AcousticModel {
 public:
  /// Builds prototypes by rendering every phone through `extractor`'s
  /// configuration. Deterministic given `seed`.
  explicit AcousticModel(const audio::MfccExtractor& extractor,
                         std::uint64_t seed = 7);

  /// Ranks all phones for one frame, best first, with softmax posteriors.
  std::vector<ScoredPhone> Classify(const audio::MfccFrame& frame) const;

  /// The phone whose prototype is closest to `frame`.
  PhonemeId BestPhone(const audio::MfccFrame& frame) const;

  const std::vector<audio::MfccFrame>& prototypes() const {
    return prototypes_;
  }

 private:
  std::vector<audio::MfccFrame> prototypes_;  // One per phone.
};

}  // namespace rtsi::asr

#endif  // RTSI_ASR_ACOUSTIC_MODEL_H_
