// Lattice decoder: PCM audio -> phonetic lattice.
//
// Frames are classified against the acoustic model's phone prototypes, runs
// of identical best phones are collapsed into lattice segments, and each
// segment keeps the top hypotheses with averaged posteriors. This plays the
// role of the commercial decoder the paper used ("converted into phonetic
// lattices"); it is intentionally simple but produces real lattices from
// real (synthetic) audio through the full MFCC path.

#ifndef RTSI_ASR_DECODER_H_
#define RTSI_ASR_DECODER_H_

#include <cstddef>

#include "asr/acoustic_model.h"
#include "asr/lattice.h"
#include "asr/phone_lm.h"
#include "audio/mfcc.h"
#include "audio/pcm.h"

namespace rtsi::asr {

struct DecoderConfig {
  int max_hypotheses_per_segment = 3;
  std::size_t min_run_frames = 2;  // Runs shorter than this are merged away.

  /// Viterbi decoding over the phone-bigram model instead of framewise
  /// argmax: transitions between phones pay `switch_logprob` plus the
  /// (weighted) bigram score, which smooths over single-frame acoustic
  /// errors. Requires `phone_lm`.
  bool use_viterbi = false;
  const PhoneBigramModel* phone_lm = nullptr;  // Not owned.
  double self_loop_logprob = -0.105;  // log(0.9): phones persist ~frames.
  double switch_logprob = -2.303;     // log(0.1).
  double lm_weight = 1.0;
};

class LatticeDecoder {
 public:
  LatticeDecoder(const audio::MfccExtractor* extractor,
                 const AcousticModel* model, const DecoderConfig& config);

  /// Decodes a PCM buffer into a phonetic lattice.
  PhoneticLattice Decode(const audio::PcmBuffer& pcm) const;

 private:
  const audio::MfccExtractor* extractor_;  // Not owned.
  const AcousticModel* model_;             // Not owned.
  DecoderConfig config_;
};

}  // namespace rtsi::asr

#endif  // RTSI_ASR_DECODER_H_
