// Phone-bigram language model for lattice decoding.
//
// Trained from phone sequences (typically lexicon pronunciations of the
// corpus vocabulary) with add-k smoothing; the Viterbi decoder uses it to
// penalize phonotactically implausible transitions, smoothing over
// single-frame acoustic errors.

#ifndef RTSI_ASR_PHONE_LM_H_
#define RTSI_ASR_PHONE_LM_H_

#include <vector>

#include "asr/phoneme.h"

namespace rtsi::asr {

class PhoneBigramModel {
 public:
  /// Uniform model (all transitions equally likely).
  PhoneBigramModel();

  /// Accumulates bigram counts from a phone sequence.
  void AddSequence(const std::vector<PhonemeId>& phones);

  /// Recomputes probabilities from the accumulated counts with add-k
  /// smoothing. Call after the last AddSequence.
  void Finalize(double smoothing = 0.5);

  /// log P(to | from); defined for every phone pair (smoothed).
  double LogTransition(PhonemeId from, PhonemeId to) const;

  /// log P(phone) as the first phone of an utterance.
  double LogInitial(PhonemeId phone) const;

  std::uint64_t total_bigrams() const { return total_bigrams_; }

 private:
  int n_;
  std::vector<std::uint64_t> bigram_counts_;   // n x n.
  std::vector<std::uint64_t> initial_counts_;  // n.
  std::vector<double> log_transition_;         // n x n.
  std::vector<double> log_initial_;            // n.
  std::uint64_t total_bigrams_ = 0;
};

}  // namespace rtsi::asr

#endif  // RTSI_ASR_PHONE_LM_H_
