#include "asr/lattice.h"

namespace rtsi::asr {

std::vector<PhonemeId> PhoneticLattice::BestPath() const {
  std::vector<PhonemeId> path;
  path.reserve(segments_.size());
  for (const auto& segment : segments_) {
    if (!segment.hypotheses.empty()) {
      path.push_back(segment.hypotheses.front().phone);
    }
  }
  return path;
}

std::string UnitName(const std::vector<PhonemeId>& phones) {
  std::string name;
  for (std::size_t i = 0; i < phones.size(); ++i) {
    if (i > 0) name += '_';
    name += PhonemeName(phones[i]);
  }
  return name;
}

std::vector<std::string> PhoneticLattice::ExtractUnits(
    int n, double alt_threshold) const {
  std::vector<std::string> units;
  const std::vector<PhonemeId> best = BestPath();
  if (n <= 0 || best.size() < static_cast<std::size_t>(n)) return units;

  std::vector<PhonemeId> gram(static_cast<std::size_t>(n));
  for (std::size_t start = 0; start + n <= best.size(); ++start) {
    for (int i = 0; i < n; ++i) gram[i] = best[start + i];
    units.push_back(UnitName(gram));

    // Alternative units: substitute the runner-up hypothesis at each slot of
    // the window when it is confident enough. One substitution at a time
    // keeps the unit count linear in lattice size.
    for (int i = 0; i < n; ++i) {
      const auto& hyps = segments_[start + i].hypotheses;
      if (hyps.size() >= 2 && hyps[1].posterior >= alt_threshold) {
        const PhonemeId saved = gram[i];
        gram[i] = hyps[1].phone;
        units.push_back(UnitName(gram));
        gram[i] = saved;
      }
    }
  }
  return units;
}

}  // namespace rtsi::asr
