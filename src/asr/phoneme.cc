#include "asr/phoneme.h"

#include <array>

namespace rtsi::asr {
namespace {

struct PhonemeEntry {
  std::string_view name;
  audio::PhoneSpec spec;
};

// Formants are spread over [240, 2600] Hz so that neighbouring phones are
// separated by more than the mel filter bandwidth at 16 kHz; fricatives and
// stops get a noise component.
constexpr int kNumPhonemes = 28;
const std::array<PhonemeEntry, kNumPhonemes>& Inventory() {
  static const std::array<PhonemeEntry, kNumPhonemes> kTable = {{
      // Vowels: fully voiced, distinct (F1, F2) pairs.
      {"aa", {700.0, 1220.0, 0.0, 0.090, 0.60}},
      {"ae", {660.0, 1700.0, 0.0, 0.090, 0.60}},
      {"ah", {620.0, 1200.0, 0.0, 0.080, 0.60}},
      {"ao", {560.0, 880.0, 0.0, 0.090, 0.60}},
      {"eh", {530.0, 1850.0, 0.0, 0.080, 0.60}},
      {"er", {490.0, 1350.0, 0.0, 0.090, 0.60}},
      {"ih", {400.0, 1990.0, 0.0, 0.070, 0.60}},
      {"iy", {270.0, 2290.0, 0.0, 0.090, 0.60}},
      {"ow", {450.0, 1030.0, 0.0, 0.090, 0.60}},
      {"uh", {440.0, 1120.0, 0.0, 0.070, 0.60}},
      {"uw", {300.0, 870.0, 0.0, 0.090, 0.60}},
      // Nasals and liquids: voiced, lower amplitude.
      {"m", {280.0, 1300.0, 0.0, 0.060, 0.45}},
      {"n", {320.0, 1500.0, 0.0, 0.060, 0.45}},
      {"ng", {330.0, 1100.0, 0.0, 0.065, 0.45}},
      {"l", {360.0, 1600.0, 0.0, 0.060, 0.50}},
      {"r", {420.0, 1300.0, 0.0, 0.060, 0.50}},
      {"w", {290.0, 750.0, 0.0, 0.055, 0.50}},
      {"y", {260.0, 2200.0, 0.0, 0.055, 0.50}},
      // Fricatives: noise-dominated with a spectral tilt cue in F2.
      {"s", {1800.0, 2600.0, 0.85, 0.080, 0.50}},
      {"sh", {1500.0, 2300.0, 0.85, 0.080, 0.50}},
      {"f", {1100.0, 2100.0, 0.80, 0.070, 0.45}},
      {"v", {900.0, 1800.0, 0.45, 0.060, 0.45}},
      {"z", {1600.0, 2500.0, 0.55, 0.070, 0.50}},
      {"hh", {800.0, 1700.0, 0.90, 0.055, 0.40}},
      // Stops: short, mixed noise bursts.
      {"p", {900.0, 1900.0, 0.65, 0.045, 0.50}},
      {"t", {1300.0, 2400.0, 0.65, 0.045, 0.50}},
      {"k", {1100.0, 2000.0, 0.65, 0.045, 0.50}},
      {"d", {1000.0, 2200.0, 0.40, 0.045, 0.50}},
  }};
  return kTable;
}

}  // namespace

int PhonemeCount() { return kNumPhonemes; }

std::string_view PhonemeName(PhonemeId id) { return Inventory()[id].name; }

const audio::PhoneSpec& PhonemeSpec(PhonemeId id) {
  return Inventory()[id].spec;
}

PhonemeId PhonemeByName(std::string_view name) {
  for (int i = 0; i < kNumPhonemes; ++i) {
    if (Inventory()[i].name == name) return static_cast<PhonemeId>(i);
  }
  return static_cast<PhonemeId>(kNumPhonemes);
}

}  // namespace rtsi::asr
