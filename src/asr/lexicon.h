// Lexicon with rule-based grapheme-to-phoneme (G2P) fallback.
//
// Maps words to phone sequences deterministically. Real systems ship large
// pronunciation dictionaries; here every word is derived from spelling by
// digraph-aware letter rules, which is sufficient because the synthetic
// corpus's words are arbitrary identifiers whose only requirement is a
// *stable, distinct* pronunciation (keyword -> voice conversion for
// multi-modal queries must agree between indexing and querying).

#ifndef RTSI_ASR_LEXICON_H_
#define RTSI_ASR_LEXICON_H_

#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asr/phoneme.h"

namespace rtsi::asr {

class Lexicon {
 public:
  Lexicon() = default;

  /// Phone sequence for `word` (lowercased ASCII expected). Deterministic;
  /// cached (hence logically const). Unknown characters are skipped; an
  /// empty derivation yields a single schwa-like phone so every word is
  /// pronounceable.
  std::vector<PhonemeId> Pronounce(std::string_view word) const;

  /// Registers an explicit pronunciation, overriding the G2P rules.
  void AddPronunciation(std::string word, std::vector<PhonemeId> phones);

  /// Snapshot of all cached (word, phones) pairs.
  std::vector<std::pair<std::string, std::vector<PhonemeId>>> Entries() const;

  std::size_t cache_size() const;

 private:
  static std::vector<PhonemeId> GraphemeToPhoneme(std::string_view word);

  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, std::vector<PhonemeId>> cache_;
};

}  // namespace rtsi::asr

#endif  // RTSI_ASR_LEXICON_H_
