// Phoneme inventory of the simulated speech pipeline.
//
// A compact inventory of 28 phones, each with a distinct formant signature
// (see audio/synthesizer.h). The inventory is fixed at compile time; phones
// are referenced by dense PhonemeId.

#ifndef RTSI_ASR_PHONEME_H_
#define RTSI_ASR_PHONEME_H_

#include <cstdint>
#include <string_view>

#include "audio/synthesizer.h"

namespace rtsi::asr {

using PhonemeId = std::uint8_t;

/// Number of phones in the inventory.
int PhonemeCount();

/// Short name ("aa", "sh", ...). `id` must be < PhonemeCount().
std::string_view PhonemeName(PhonemeId id);

/// Acoustic rendering parameters of the phone.
const audio::PhoneSpec& PhonemeSpec(PhonemeId id);

/// Reverse lookup; returns PhonemeCount() if `name` is unknown.
PhonemeId PhonemeByName(std::string_view name);

}  // namespace rtsi::asr

#endif  // RTSI_ASR_PHONEME_H_
