#include "asr/acoustic_model.h"

#include <algorithm>
#include <cmath>

#include "audio/synthesizer.h"

namespace rtsi::asr {
namespace {

double SquaredDistance(const audio::MfccFrame& a, const audio::MfccFrame& b) {
  double acc = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

AcousticModel::AcousticModel(const audio::MfccExtractor& extractor,
                             std::uint64_t seed) {
  audio::SynthesizerConfig synth_config;
  synth_config.sample_rate_hz = extractor.config().sample_rate_hz;
  synth_config.noise_floor = 0.0;  // Prototypes are built from clean audio.
  const audio::Synthesizer synth(synth_config);

  Rng rng(seed);
  prototypes_.resize(PhonemeCount());
  for (int p = 0; p < PhonemeCount(); ++p) {
    audio::PhoneSpec spec = PhonemeSpec(static_cast<PhonemeId>(p));
    spec.duration_seconds = 0.20;  // Long steady state for a stable mean.
    const audio::PcmBuffer pcm = synth.Render({spec}, rng);
    const std::vector<audio::MfccFrame> frames = extractor.Extract(pcm);

    audio::MfccFrame mean(extractor.feature_dimension(), 0.0);
    // Skip the attack/release frames at both ends.
    const std::size_t skip = frames.size() > 4 ? 2 : 0;
    std::size_t used = 0;
    for (std::size_t f = skip; f + skip < frames.size(); ++f) {
      for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += frames[f][i];
      ++used;
    }
    if (used > 0) {
      for (double& v : mean) v /= static_cast<double>(used);
    }
    prototypes_[p] = std::move(mean);
  }
}

std::vector<ScoredPhone> AcousticModel::Classify(
    const audio::MfccFrame& frame) const {
  std::vector<double> distances(prototypes_.size());
  for (std::size_t p = 0; p < prototypes_.size(); ++p) {
    distances[p] = SquaredDistance(frame, prototypes_[p]);
  }
  const double min_distance =
      *std::min_element(distances.begin(), distances.end());

  // Softmax over negative distances, scaled so the best phone dominates but
  // close competitors keep visible posterior mass.
  constexpr double kTemperature = 10.0;
  std::vector<ScoredPhone> scored(prototypes_.size());
  double normalizer = 0.0;
  for (std::size_t p = 0; p < prototypes_.size(); ++p) {
    const double logit = -(distances[p] - min_distance) / kTemperature;
    scored[p] = {static_cast<PhonemeId>(p), std::exp(logit)};
    normalizer += scored[p].posterior;
  }
  for (auto& s : scored) s.posterior /= normalizer;
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPhone& a, const ScoredPhone& b) {
              return a.posterior > b.posterior;
            });
  return scored;
}

PhonemeId AcousticModel::BestPhone(const audio::MfccFrame& frame) const {
  PhonemeId best = 0;
  double best_distance = SquaredDistance(frame, prototypes_[0]);
  for (std::size_t p = 1; p < prototypes_.size(); ++p) {
    const double d = SquaredDistance(frame, prototypes_[p]);
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<PhonemeId>(p);
    }
  }
  return best;
}

}  // namespace rtsi::asr
