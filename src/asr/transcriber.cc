#include "asr/transcriber.h"

#include <utility>

namespace rtsi::asr {

Transcriber::Transcriber(const TranscriberConfig& config,
                         std::function<std::string(Rng&)> confusion_word)
    : config_(config), confusion_word_(std::move(confusion_word)) {}

std::vector<std::string> Transcriber::Transcribe(
    const std::vector<std::string>& truth, Rng& rng) const {
  std::vector<std::string> out;
  out.reserve(truth.size());
  const double wer = config_.word_error_rate;
  const double sub_cut = config_.substitution_share;
  const double del_cut = sub_cut + config_.deletion_share;

  for (const std::string& word : truth) {
    if (!rng.NextBool(wer)) {
      out.push_back(word);
      continue;
    }
    const double kind = rng.NextDouble();
    if (kind < sub_cut) {
      out.push_back(confusion_word_(rng));  // Substitution.
    } else if (kind < del_cut) {
      // Deletion: emit nothing.
    } else {
      out.push_back(confusion_word_(rng));  // Insertion before the word...
      out.push_back(word);                  // ...keeping the original too.
    }
  }
  return out;
}

}  // namespace rtsi::asr
