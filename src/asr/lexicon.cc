#include "asr/lexicon.h"

#include <array>

namespace rtsi::asr {
namespace {

// Letter -> phone name. Digraphs are matched first.
struct DigraphRule {
  std::string_view graph;
  std::string_view phone;
};

constexpr std::array<DigraphRule, 8> kDigraphs = {{
    {"sh", "sh"},
    {"ch", "sh"},
    {"th", "t"},
    {"ng", "ng"},
    {"oo", "uw"},
    {"ee", "iy"},
    {"ou", "ow"},
    {"er", "er"},
}};

std::string_view LetterPhone(char c) {
  switch (c) {
    case 'a': return "ae";
    case 'b': return "p";
    case 'c': return "k";
    case 'd': return "d";
    case 'e': return "eh";
    case 'f': return "f";
    case 'g': return "k";
    case 'h': return "hh";
    case 'i': return "ih";
    case 'j': return "sh";
    case 'k': return "k";
    case 'l': return "l";
    case 'm': return "m";
    case 'n': return "n";
    case 'o': return "ow";
    case 'p': return "p";
    case 'q': return "k";
    case 'r': return "r";
    case 's': return "s";
    case 't': return "t";
    case 'u': return "uh";
    case 'v': return "v";
    case 'w': return "w";
    case 'x': return "z";
    case 'y': return "y";
    case 'z': return "z";
    case '0': return "ow";
    case '1': return "w";
    case '2': return "uw";
    case '3': return "iy";
    case '4': return "ao";
    case '5': return "f";
    case '6': return "s";
    case '7': return "eh";
    case '8': return "ae";
    case '9': return "n";
    default: return {};
  }
}

}  // namespace

std::vector<PhonemeId> Lexicon::GraphemeToPhoneme(std::string_view word) {
  std::vector<PhonemeId> phones;
  phones.reserve(word.size());
  std::size_t i = 0;
  while (i < word.size()) {
    bool matched = false;
    for (const auto& rule : kDigraphs) {
      if (word.substr(i, rule.graph.size()) == rule.graph) {
        phones.push_back(PhonemeByName(rule.phone));
        i += rule.graph.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    const std::string_view phone = LetterPhone(word[i]);
    if (!phone.empty()) phones.push_back(PhonemeByName(phone));
    ++i;
  }
  if (phones.empty()) phones.push_back(PhonemeByName("ah"));
  return phones;
}

std::vector<PhonemeId> Lexicon::Pronounce(std::string_view word) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(std::string(word));
  if (it != cache_.end()) return it->second;
  std::vector<PhonemeId> phones = GraphemeToPhoneme(word);
  cache_.emplace(std::string(word), phones);
  return phones;
}

void Lexicon::AddPronunciation(std::string word,
                               std::vector<PhonemeId> phones) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_[std::move(word)] = std::move(phones);
}

std::vector<std::pair<std::string, std::vector<PhonemeId>>>
Lexicon::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::vector<PhonemeId>>> entries;
  entries.reserve(cache_.size());
  for (const auto& [word, phones] : cache_) {
    entries.emplace_back(word, phones);
  }
  return entries;
}

std::size_t Lexicon::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace rtsi::asr
