#include "text/stopwords.h"

#include <algorithm>

namespace rtsi::text {
namespace {

const char* const kDefaultStopwords[] = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",    "but",
    "by",   "for",  "from", "had",  "has",  "have", "he",    "her",
    "his",  "i",    "if",   "in",   "is",   "it",   "its",   "me",
    "my",   "no",   "not",  "of",   "on",   "or",   "our",   "she",
    "so",   "that", "the",  "their", "them", "then", "there", "they",
    "this", "to",   "up",   "us",   "was",  "we",   "were",  "what",
    "when", "who",  "will", "with", "you",  "your",
};

}  // namespace

StopwordFilter::StopwordFilter() {
  for (const char* word : kDefaultStopwords) words_.insert(word);
}

StopwordFilter::StopwordFilter(std::vector<std::string> words) {
  for (auto& word : words) words_.insert(std::move(word));
}

bool StopwordFilter::IsStopword(std::string_view token) const {
  return words_.count(std::string(token)) > 0;
}

std::vector<std::string> StopwordFilter::Filter(
    std::vector<std::string> tokens) const {
  tokens.erase(std::remove_if(tokens.begin(), tokens.end(),
                              [this](const std::string& t) {
                                return IsStopword(t);
                              }),
               tokens.end());
  return tokens;
}

}  // namespace rtsi::text
