#include "text/tokenizer.h"

#include <cctype>

namespace rtsi::text {

Tokenizer::Tokenizer(const TokenizerConfig& config) : config_(config) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.size() >= config_.min_token_length &&
        current.size() <= config_.max_token_length) {
      tokens.push_back(current);
    }
    current.clear();
  };

  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    if (byte >= 0x80) {
      current.push_back(c);  // UTF-8 continuation/lead byte: keep verbatim.
    } else if (std::isalnum(byte) != 0) {
      current.push_back(
          static_cast<char>(std::tolower(byte)));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace rtsi::text
