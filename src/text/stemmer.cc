#include "text/stemmer.h"

#include <array>
#include <cctype>

namespace rtsi::text {
namespace {

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

bool HasVowel(std::string_view s) {
  for (const char c : s) {
    if (IsVowel(c)) return true;
  }
  return false;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// Doubled consonant at the end ("running" -> "runn" -> "run").
bool EndsWithDoubleConsonant(std::string_view s) {
  if (s.size() < 2) return false;
  const char last = s[s.size() - 1];
  return last == s[s.size() - 2] && !IsVowel(last);
}

}  // namespace

std::string Stemmer::Stem(std::string_view token) const {
  if (token.size() < 4) return std::string(token);
  for (const char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        static_cast<unsigned char>(c) >= 0x80) {
      return std::string(token);  // Ids/numbers/UTF-8: leave alone.
    }
  }

  std::string s(token);

  // Plural / verb endings, longest first.
  if (EndsWith(s, "sses")) {
    s.resize(s.size() - 2);  // addresses -> address.
  } else if (EndsWith(s, "ies")) {
    s.resize(s.size() - 2);  // stories -> story-ish ("stori" -> +y below).
    s.back() = 'y';
  } else if (EndsWith(s, "ness")) {
    s.resize(s.size() - 4);  // darkness -> dark.
  } else if (EndsWith(s, "s") && !EndsWith(s, "ss") && s.size() > 4) {
    s.resize(s.size() - 1);  // streams -> stream.
  }

  if (EndsWith(s, "ing") && s.size() > 6 &&
      HasVowel(std::string_view(s).substr(0, s.size() - 3))) {
    s.resize(s.size() - 3);  // streaming -> stream.
    if (EndsWithDoubleConsonant(s)) s.resize(s.size() - 1);  // running->run.
  } else if (EndsWith(s, "ed") && s.size() > 5 &&
             HasVowel(std::string_view(s).substr(0, s.size() - 2))) {
    s.resize(s.size() - 2);  // streamed -> stream.
    if (EndsWithDoubleConsonant(s)) s.resize(s.size() - 1);
  }

  if (EndsWith(s, "ly") && s.size() > 5) {
    s.resize(s.size() - 2);  // quickly -> quick.
  }
  if (EndsWith(s, "ation") && s.size() > 7) {
    s.resize(s.size() - 5);
    s += 'e';  // information -> informe-ish; stable, collision-free enough.
  }
  return s;
}

}  // namespace rtsi::text
