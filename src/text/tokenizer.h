// Tokenization of transcribed text into index terms.
//
// Splits on non-alphanumeric bytes, lowercases ASCII, and passes multi-byte
// UTF-8 sequences through untouched (so CJK transcripts segmented upstream
// survive). Tokens shorter than `min_token_length` are dropped.

#ifndef RTSI_TEXT_TOKENIZER_H_
#define RTSI_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rtsi::text {

struct TokenizerConfig {
  std::size_t min_token_length = 2;
  std::size_t max_token_length = 64;
};

class Tokenizer {
 public:
  explicit Tokenizer(const TokenizerConfig& config = {});

  /// Splits `text` into lowercase tokens.
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerConfig config_;
};

}  // namespace rtsi::text

#endif  // RTSI_TEXT_TOKENIZER_H_
