// Term dictionary: interns term strings to dense TermIds and tracks
// document frequencies for IDF.
//
// Shared by the text and sound LSM-trees (lattice units are terms too).
// Thread-safe: interning takes an exclusive lock; lookups take a shared
// lock; frequency counters are atomics.

#ifndef RTSI_TEXT_TERM_DICTIONARY_H_
#define RTSI_TEXT_TERM_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rtsi::text {

class TermDictionary {
 public:
  TermDictionary() = default;

  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;

  /// Returns the id of `term`, interning it on first sight.
  TermId Intern(std::string_view term);

  /// Id of `term`, or kInvalidTermId when unknown.
  TermId Lookup(std::string_view term) const;

  /// String of `id`; empty view when out of range.
  std::string_view TermString(TermId id) const;

  /// Bumps the number of documents (streams) containing `id`.
  void AddDocumentOccurrence(TermId id);

  /// Number of documents containing `id`.
  std::uint64_t DocumentFrequency(TermId id) const;

  /// Registers that one more document exists (IDF denominator).
  void AddDocument() {
    num_documents_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t num_documents() const {
    return num_documents_.load(std::memory_order_relaxed);
  }

  /// Smoothed inverse document frequency of `id`:
  /// log(1 + N / (1 + df)). Always >= 0.
  double InverseDocumentFrequency(TermId id) const;

  std::size_t size() const;

  /// Calls fn(TermId, std::string_view term, std::uint64_t df) for every
  /// interned term in id order (snapshot save path).
  template <typename Fn>
  void ForEachInIdOrder(Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (TermId id = 0; id < strings_.size(); ++id) {
      fn(id, std::string_view(strings_[id]),
         doc_freq_[id]->load(std::memory_order_relaxed));
    }
  }

  /// Restores a document-frequency counter (snapshot restore path; the
  /// term itself is re-interned in id order first).
  void RestoreDocumentFrequency(TermId id, std::uint64_t df);

  void SetNumDocuments(std::uint64_t n) {
    num_documents_.store(n, std::memory_order_relaxed);
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> strings_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> doc_freq_;
  std::atomic<std::uint64_t> num_documents_{0};
};

}  // namespace rtsi::text

#endif  // RTSI_TEXT_TERM_DICTIONARY_H_
