#include "text/term_dictionary.h"

#include <cmath>
#include <mutex>

namespace rtsi::text {

TermId TermDictionary::Intern(std::string_view term) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(std::string(term));
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] =
      ids_.emplace(std::string(term), static_cast<TermId>(strings_.size()));
  if (inserted) {
    strings_.emplace_back(term);
    doc_freq_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  return it->second;
}

TermId TermDictionary::Lookup(std::string_view term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTermId : it->second;
}

std::string_view TermDictionary::TermString(TermId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= strings_.size()) return {};
  return strings_[id];
}

void TermDictionary::AddDocumentOccurrence(TermId id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id < doc_freq_.size()) {
    doc_freq_[id]->fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t TermDictionary::DocumentFrequency(TermId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= doc_freq_.size()) return 0;
  return doc_freq_[id]->load(std::memory_order_relaxed);
}

double TermDictionary::InverseDocumentFrequency(TermId id) const {
  const double n = static_cast<double>(num_documents());
  const double df = static_cast<double>(DocumentFrequency(id));
  return std::log1p(n / (1.0 + df));
}

void TermDictionary::RestoreDocumentFrequency(TermId id, std::uint64_t df) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id < doc_freq_.size()) {
    doc_freq_[id]->store(df, std::memory_order_relaxed);
  }
}

std::size_t TermDictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return strings_.size();
}

}  // namespace rtsi::text
