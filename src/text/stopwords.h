// Stop-word filtering (the paper's 32M-word corpus excludes stop words).

#ifndef RTSI_TEXT_STOPWORDS_H_
#define RTSI_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace rtsi::text {

class StopwordFilter {
 public:
  /// Built-in English list.
  StopwordFilter();

  /// Custom list.
  explicit StopwordFilter(std::vector<std::string> words);

  bool IsStopword(std::string_view token) const;

  /// Removes stop words in place; returns the filtered vector for chaining.
  std::vector<std::string> Filter(std::vector<std::string> tokens) const;

  std::size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace rtsi::text

#endif  // RTSI_TEXT_STOPWORDS_H_
