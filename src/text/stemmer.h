// Lightweight English suffix stemmer (Porter-inspired).
//
// Folds inflected forms ("streams", "streaming", "streamed") onto one
// index term, improving recall of the text modality. Optional: the
// ingestion pipeline applies it when configured (Chinese-style corpora
// tokenized upstream would disable it).

#ifndef RTSI_TEXT_STEMMER_H_
#define RTSI_TEXT_STEMMER_H_

#include <string>
#include <string_view>

namespace rtsi::text {

class Stemmer {
 public:
  /// Returns the stem of a lowercase token. Tokens shorter than 4
  /// characters and tokens with digits are returned unchanged.
  std::string Stem(std::string_view token) const;
};

}  // namespace rtsi::text

#endif  // RTSI_TEXT_STEMMER_H_
