// HTTP routes over the multi-modal search service:
//
//   GET /                 — tiny HTML search page
//   GET /search?q=...&k=N — fused multi-modal keyword search, JSON
//   GET /live?q=...&k=N   — text-tree search restricted to live streams
//   GET /ingest?stream=ID&words=a+b+c[&live=0|1] — index one window
//   GET /finish?stream=ID — end a broadcast
//   GET /pop?stream=ID&delta=N — popularity update
//   GET /stats            — index statistics, JSON
//
// Everything is GET for demo simplicity (drive it from a browser bar).

#ifndef RTSI_SERVER_SEARCH_HANDLER_H_
#define RTSI_SERVER_SEARCH_HANDLER_H_

#include "server/http_server.h"
#include "service/search_service.h"

namespace rtsi::server {

/// Registers all routes on `http`. `service` and `clock` must outlive the
/// server. Single-threaded access model (the demo server handles requests
/// sequentially).
void RegisterSearchRoutes(HttpServer& http, service::SearchService& service,
                          SimulatedClock& clock);

}  // namespace rtsi::server

#endif  // RTSI_SERVER_SEARCH_HANDLER_H_
