// HTTP routes over the multi-modal search service:
//
//   GET /                 — tiny HTML search page
//   GET /search?q=...&k=N — fused multi-modal keyword search, JSON
//   GET /live?q=...&k=N   — text-tree search restricted to live streams
//   GET /ingest?stream=ID&words=a+b+c[&live=0|1] — index one window;
//       also accepts a POST body of lines "STREAM word word ..." (one
//       window per line). Registered as a batch route: the async server
//       coalesces queued /ingest requests into one IngestBatch call.
//   GET /finish?stream=ID — end a broadcast
//   GET /pop?stream=ID&delta=N — popularity update
//   GET /stats            — index + shard + server-queue statistics, JSON
//
// Works on either front-end (blocking or epoll; see
// server/http_server.h). Handlers pin the published index pair per
// request, so they are safe under the async server's worker pool.

#ifndef RTSI_SERVER_SEARCH_HANDLER_H_
#define RTSI_SERVER_SEARCH_HANDLER_H_

#include "server/http_server.h"
#include "service/search_service.h"

namespace rtsi::server {

/// Registers all routes on `http`. `service`, `clock` and `http` must
/// outlive the server's run.
void RegisterSearchRoutes(HttpServerBase& http,
                          service::SearchService& service,
                          SimulatedClock& clock);

}  // namespace rtsi::server

#endif  // RTSI_SERVER_SEARCH_HANDLER_H_
