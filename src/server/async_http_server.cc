#include "server/async_http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rtsi::server {

AsyncHttpServer::AsyncHttpServer(const ServerConfig& config)
    : config_(config) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.max_batch < 1) config_.max_batch = 1;
}

AsyncHttpServer::~AsyncHttpServer() { Stop(); }

void AsyncHttpServer::Route(const std::string& path, HttpHandler handler) {
  routes_[path] = std::move(handler);
}

void AsyncHttpServer::RouteBatch(const std::string& path,
                                 HttpBatchHandler handler) {
  batch_routes_[path] = std::move(handler);
}

Status AsyncHttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed for port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 256) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (event_fd_ >= 0) ::close(event_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = -1;
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev = epoll_event{};
  ev.events = EPOLLIN;
  ev.data.fd = event_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  stopping_.store(false);
  running_.store(true);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  net_thread_ = std::thread([this] { NetLoop(); });
  return Status::Ok();
}

void AsyncHttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the network thread (it also polls at 50 ms, so this is a fast
  // path, not a correctness requirement) and the workers.
  std::uint64_t wake = 1;
  (void)!::write(event_fd_, &wake, sizeof(wake));
  work_cv_.notify_all();
  if (net_thread_.joinable()) net_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  event_fd_ = epoll_fd_ = -1;
}

ServerQueueStats AsyncHttpServer::QueueStats() const {
  ServerQueueStats stats;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    stats.pending = pending_.size();
    stats.in_flight = in_worker_;
    for (const Work& work : pending_) {
      ++stats.pending_by_path[work.request.path];
    }
  }
  stats.connections = conn_count_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  return stats;
}

void AsyncHttpServer::NetLoop() {
  std::vector<epoll_event> events(64);
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 50);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      if (fd == event_fd_) {
        std::uint64_t count = 0;
        while (::read(event_fd_, &count, sizeof(count)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) OnReadable(it->second);
      }
      if (ev & EPOLLOUT) {
        // Re-find: OnReadable above may have closed the connection.
        auto it = conns_.find(fd);
        if (it != conns_.end()) Pump(it->second);
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain: stop accepting, let queued + in-flight requests finish and
      // their responses flush, close idle connections, then exit.
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      DrainCompletions();
      std::vector<int> idle;
      for (const auto& [fd, conn] : conns_) {
        if (!conn.in_flight && conn.out.empty()) idle.push_back(fd);
      }
      for (const int fd : idle) CloseConn(fd);
      bool quiet;
      {
        std::lock_guard<std::mutex> lock(work_mu_);
        quiet = pending_.empty() && in_worker_ == 0;
      }
      {
        std::lock_guard<std::mutex> lock(done_mu_);
        quiet = quiet && done_.empty();
      }
      if (quiet && conns_.empty()) return;
    }
  }
}

void AsyncHttpServer::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: the edge is drained.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(fd, Conn(fd, next_gen_++, config_.max_head_bytes,
                            config_.max_body_bytes));
    conn_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AsyncHttpServer::OnReadable(Conn& conn) {
  char buf[8192];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.parser.Append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error. Buffered bytes may still hold a complete request
    // (client wrote and half-closed); serve it, then close.
    conn.read_closed = true;
    break;
  }
  Pump(conn);
}

void AsyncHttpServer::Pump(Conn& conn) {
  // Drives the connection state machine until it blocks on I/O, on a
  // worker, or closes. `conn` is invalid after CloseConn.
  while (true) {
    if (!FlushWrites(conn)) {
      CloseConn(conn.fd);
      return;
    }
    if (!conn.out.empty()) return;  // EAGAIN: EPOLLOUT will resume us.
    if (conn.close_after_write) {
      CloseConn(conn.fd);
      return;
    }
    if (conn.in_flight) return;  // Completion will resume us.
    if (!MaybeDispatch(conn)) {
      if (conn.read_closed) CloseConn(conn.fd);
      return;
    }
  }
}

bool AsyncHttpServer::FlushWrites(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ArmWrite(conn, true);
      return true;
    }
    return false;  // Peer is gone.
  }
  if (!conn.out.empty()) {
    conn.out.clear();
    conn.out_off = 0;
    ArmWrite(conn, false);
  }
  return true;
}

bool AsyncHttpServer::MaybeDispatch(Conn& conn) {
  const auto result = conn.parser.Parse();
  if (result == internal::RequestParser::Result::kNeedMore) return false;
  if (result == internal::RequestParser::Result::kError) {
    // Oversized or malformed head/body: answer and cut the connection —
    // the parse position is unrecoverable.
    SendResponse(conn,
                 HttpResponse{conn.parser.error_status(), "text/plain",
                              "bad request\n"},
                 /*keep_alive=*/false);
    return true;
  }
  Work work;
  work.fd = conn.fd;
  work.gen = conn.gen;
  work.request = std::move(conn.parser.request());
  work.keep_alive = conn.parser.keep_alive();
  conn.parser.Reset();

  bool admitted = false;
  if (!stopping_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(work_mu_);
    if (pending_.size() < config_.max_pending) {
      pending_.push_back(std::move(work));
      admitted = true;
    }
  }
  if (admitted) {
    conn.in_flight = true;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    work_cv_.notify_one();
    return true;
  }
  // Admission control: the queue is full (or we're draining). Shed with
  // an explicit 503 the client can act on; the connection stays usable.
  shed_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response{503, "application/json",
                        "{\"error\":\"overloaded\",\"retry_after\":1}\n"};
  response.headers.emplace_back("Retry-After", "1");
  SendResponse(conn, response, work.keep_alive);
  return true;
}

void AsyncHttpServer::SendResponse(Conn& conn, const HttpResponse& response,
                                   bool keep_alive) {
  if (stopping_.load(std::memory_order_relaxed)) keep_alive = false;
  if (!keep_alive) conn.close_after_write = true;
  conn.out += internal::SerializeResponse(response, /*http11=*/true,
                                          keep_alive);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

void AsyncHttpServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
  conn_count_.fetch_sub(1, std::memory_order_relaxed);
}

void AsyncHttpServer::ArmWrite(Conn& conn, bool enable) {
  if (conn.want_write == enable) return;
  conn.want_write = enable;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | (enable ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void AsyncHttpServer::DrainCompletions() {
  std::vector<Done> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (Done& done : batch) {
    auto it = conns_.find(done.fd);
    // Generation check: the fd may have been recycled for a brand-new
    // connection while this response was computing.
    if (it == conns_.end() || it->second.gen != done.gen) continue;
    Conn& conn = it->second;
    conn.in_flight = false;
    SendResponse(conn, done.response, done.keep_alive);
    Pump(conn);
  }
}

void AsyncHttpServer::WorkerLoop() {
  while (true) {
    std::vector<Work> batch;
    bool batchable = false;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] {
        return !running_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (pending_.empty()) {
        if (!running_.load(std::memory_order_relaxed)) return;
        continue;
      }
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
      // Copy, not reference: push_back below reallocates the vector.
      const std::string path = batch.front().request.path;
      batchable = batch_routes_.find(path) != batch_routes_.end();
      if (batchable) {
        // Insert batching: drain queued same-path requests into one
        // handler call, up to max_batch.
        while (batch.size() < config_.max_batch && !pending_.empty() &&
               pending_.front().request.path == path) {
          batch.push_back(std::move(pending_.front()));
          pending_.pop_front();
        }
      }
      in_worker_ += batch.size();
    }

    std::vector<HttpResponse> responses;
    if (batchable) {
      std::vector<HttpRequest> requests;
      requests.reserve(batch.size());
      for (const Work& work : batch) requests.push_back(work.request);
      responses = batch_routes_.at(batch.front().request.path)(requests);
      if (responses.size() != batch.size()) {
        responses.assign(batch.size(),
                         HttpResponse{500, "text/plain",
                                      "handler returned wrong batch size\n"});
      }
      batches_.fetch_add(1, std::memory_order_relaxed);
      batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
    } else {
      responses.reserve(batch.size());
      auto it = routes_.find(batch.front().request.path);
      for (const Work& work : batch) {
        responses.push_back(it == routes_.end()
                                ? HttpResponse{404, "text/plain",
                                               "not found\n"}
                                : it->second(work.request));
      }
    }

    {
      std::lock_guard<std::mutex> lock(done_mu_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        done_.push_back(Done{batch[i].fd, batch[i].gen,
                             std::move(responses[i]), batch[i].keep_alive});
      }
    }
    std::uint64_t wake = 1;
    (void)!::write(event_fd_, &wake, sizeof(wake));
    {
      std::lock_guard<std::mutex> lock(work_mu_);
      in_worker_ -= batch.size();
    }
  }
}

}  // namespace rtsi::server
