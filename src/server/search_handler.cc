#include "server/search_handler.h"

#include <cstdlib>
#include <sstream>

#include "core/rtsi_index.h"

namespace rtsi::server {
namespace {

const char* kIndexPage = R"(<!doctype html>
<html><head><title>RTSI live audio search</title></head>
<body style="font-family: sans-serif; max-width: 40em; margin: 2em auto">
<h2>RTSI &mdash; multi-modal live audio search</h2>
<form action="/search">
  <input name="q" size="40" placeholder="keywords...">
  <button>search</button>
</form>
<p>Endpoints: <code>/search?q=...</code>, <code>/live?q=...</code>,
<code>/ingest?stream=1&amp;words=a+b+c</code>,
<code>/finish?stream=1</code>, <code>/pop?stream=1&amp;delta=100</code>,
<code>/stats</code></p>
</body></html>
)";

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream in(s);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

std::string ResultsToJson(
    const std::vector<service::SearchResult>& results) {
  std::ostringstream out;
  out << "{\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"stream\":" << results[i].stream
        << ",\"score\":" << results[i].score
        << ",\"text_score\":" << results[i].text_score
        << ",\"sound_score\":" << results[i].sound_score << '}';
  }
  out << "]}\n";
  return out.str();
}

int QueryInt(const HttpRequest& request, const char* key,
             int default_value) {
  auto it = request.query.find(key);
  if (it == request.query.end()) return default_value;
  return std::atoi(it->second.c_str());
}

std::string QueryString(const HttpRequest& request, const char* key) {
  auto it = request.query.find(key);
  return it == request.query.end() ? std::string() : it->second;
}

}  // namespace

void RegisterSearchRoutes(HttpServer& http, service::SearchService& service,
                          SimulatedClock& clock) {
  http.Route("/", [](const HttpRequest&) {
    return HttpResponse{200, "text/html", kIndexPage};
  });

  http.Route("/search", [&service](const HttpRequest& request) {
    const std::string q = QueryString(request, "q");
    if (q.empty()) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"missing q\"}\n"};
    }
    const int k = QueryInt(request, "k", 10);
    return HttpResponse{200, "application/json",
                        ResultsToJson(service.SearchKeywords(q, k))};
  });

  http.Route("/live", [&service, &clock](const HttpRequest& request) {
    const std::string q = QueryString(request, "q");
    if (q.empty()) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"missing q\"}\n"};
    }
    const int k = QueryInt(request, "k", 10);
    // Live-only search on the text tree via the filtered query API.
    Rng rng(1);
    const auto processed =
        service.query_processor().ProcessKeywords(q, rng);
    core::QueryFilter filter;
    filter.live_only = true;
    const auto results = service.text_index().QueryFiltered(
        processed.text_terms, k, clock.Now(), filter);
    std::ostringstream out;
    out << "{\"live_results\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"stream\":" << results[i].stream
          << ",\"score\":" << results[i].score << '}';
    }
    out << "]}\n";
    return HttpResponse{200, "application/json", out.str()};
  });

  http.Route("/ingest", [&service](const HttpRequest& request) {
    const std::string words = QueryString(request, "words");
    const std::string stream = QueryString(request, "stream");
    if (words.empty() || stream.empty()) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"need stream and words\"}\n"};
    }
    const bool live = QueryInt(request, "live", 1) != 0;
    const auto word_list = SplitWords(words);
    service.IngestWindow(std::strtoull(stream.c_str(), nullptr, 10),
                         word_list, live);
    return HttpResponse{
        200, "application/json",
        "{\"indexed\":" + std::to_string(word_list.size()) + "}\n"};
  });

  http.Route("/finish", [&service](const HttpRequest& request) {
    const std::string stream = QueryString(request, "stream");
    if (stream.empty()) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"need stream\"}\n"};
    }
    service.FinishStream(std::strtoull(stream.c_str(), nullptr, 10));
    return HttpResponse{200, "application/json", "{\"ok\":true}\n"};
  });

  http.Route("/pop", [&service](const HttpRequest& request) {
    const std::string stream = QueryString(request, "stream");
    const int delta = QueryInt(request, "delta", 1);
    if (stream.empty() || delta <= 0) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"need stream and delta\"}\n"};
    }
    service.UpdatePopularity(std::strtoull(stream.c_str(), nullptr, 10),
                             static_cast<std::uint64_t>(delta));
    return HttpResponse{200, "application/json", "{\"ok\":true}\n"};
  });

  http.Route("/stats", [&service](const HttpRequest&) {
    auto& text = service.text_index();
    auto& sound = service.sound_index();
    std::ostringstream out;
    out << "{\"text_postings\":" << text.tree().total_postings()
        << ",\"sound_postings\":" << sound.tree().total_postings()
        << ",\"text_levels\":" << text.tree().num_levels()
        << ",\"text_runs\":" << text.tree().num_runs()
        << ",\"policy\":\"" << lsm::MergePolicyName(text.tree().policy())
        << "\",\"merges\":" << text.GetMergeStats().merges
        << ",\"streams\":" << text.stream_table().size()
        << ",\"live_streams\":" << text.live_table().num_streams()
        << ",\"words\":" << service.text_dictionary().size()
        << ",\"lattice_units\":" << service.sound_dictionary().size()
        << ",\"memory_bytes\":"
        << (text.MemoryBytes() + sound.MemoryBytes()) << "}\n";
    return HttpResponse{200, "application/json", out.str()};
  });
}

}  // namespace rtsi::server
