#include "server/search_handler.h"

#include <cstdlib>
#include <sstream>

#include "core/rtsi_index.h"
#include "shard/shard_set.h"

namespace rtsi::server {
namespace {

const char* kIndexPage = R"(<!doctype html>
<html><head><title>RTSI live audio search</title></head>
<body style="font-family: sans-serif; max-width: 40em; margin: 2em auto">
<h2>RTSI &mdash; multi-modal live audio search</h2>
<form action="/search">
  <input name="q" size="40" placeholder="keywords...">
  <button>search</button>
</form>
<p>Endpoints: <code>/search?q=...</code>, <code>/live?q=...</code>,
<code>/ingest?stream=1&amp;words=a+b+c</code>,
<code>/finish?stream=1</code>, <code>/pop?stream=1&amp;delta=100</code>,
<code>/stats</code></p>
</body></html>
)";

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream in(s);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

std::string ResultsToJson(
    const std::vector<service::SearchResult>& results) {
  std::ostringstream out;
  out << "{\"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"stream\":" << results[i].stream
        << ",\"score\":" << results[i].score
        << ",\"text_score\":" << results[i].text_score
        << ",\"sound_score\":" << results[i].sound_score << '}';
  }
  out << "]}\n";
  return out.str();
}

int QueryInt(const HttpRequest& request, const char* key,
             int default_value) {
  auto it = request.query.find(key);
  if (it == request.query.end()) return default_value;
  return std::atoi(it->second.c_str());
}

std::string QueryString(const HttpRequest& request, const char* key) {
  auto it = request.query.find(key);
  return it == request.query.end() ? std::string() : it->second;
}

/// The ingest ops one /ingest request carries: the query-param window
/// and/or one window per body line ("STREAM word word ...").
struct ParsedIngest {
  std::vector<service::IngestOp> ops;
  std::size_t words = 0;
  std::string error;
};

ParsedIngest ParseIngest(const HttpRequest& request) {
  ParsedIngest parsed;
  const bool live = QueryInt(request, "live", 1) != 0;
  const std::string words = QueryString(request, "words");
  const std::string stream = QueryString(request, "stream");
  if (!words.empty() && !stream.empty()) {
    service::IngestOp op;
    op.stream = std::strtoull(stream.c_str(), nullptr, 10);
    op.words = SplitWords(words);
    op.live = live;
    parsed.words += op.words.size();
    parsed.ops.push_back(std::move(op));
  }
  std::istringstream lines(request.body);
  std::string line;
  while (std::getline(lines, line)) {
    auto tokens = SplitWords(line);
    if (tokens.empty()) continue;
    if (tokens.size() < 2) {
      parsed.error = "body line needs STREAM followed by words";
      return parsed;
    }
    service::IngestOp op;
    op.stream = std::strtoull(tokens[0].c_str(), nullptr, 10);
    op.words.assign(tokens.begin() + 1, tokens.end());
    op.live = live;
    parsed.words += op.words.size();
    parsed.ops.push_back(std::move(op));
  }
  if (parsed.ops.empty() && parsed.error.empty()) {
    parsed.error = "need stream and words (query params or body lines)";
  }
  return parsed;
}

void AppendShardArray(std::ostringstream& out,
                      const shard::IndexShardSet& shards) {
  out << '[';
  for (int s = 0; s < shards.num_shards(); ++s) {
    const auto stats = shards.GetShardStats(s);
    if (s > 0) out << ',';
    out << "{\"shard\":" << stats.shard
        << ",\"view_epoch\":" << stats.view_epoch << ",\"runs_per_level\":[";
    for (std::size_t l = 0; l < stats.runs_per_level.size(); ++l) {
      if (l > 0) out << ',';
      out << stats.runs_per_level[l];
    }
    out << "],\"postings\":" << stats.postings
        << ",\"streams\":" << stats.streams
        << ",\"arena_bytes\":" << stats.arena_bytes
        << ",\"memory_bytes\":" << stats.memory_bytes
        << ",\"degraded\":" << (stats.degraded ? "true" : "false") << '}';
  }
  out << ']';
}

void AppendQueueStats(std::ostringstream& out,
                      const ServerQueueStats& queue) {
  out << "{\"pending\":" << queue.pending
      << ",\"in_flight\":" << queue.in_flight
      << ",\"connections\":" << queue.connections
      << ",\"accepted\":" << queue.accepted << ",\"shed\":" << queue.shed
      << ",\"batches\":" << queue.batches
      << ",\"batched_requests\":" << queue.batched_requests
      << ",\"pending_by_path\":{";
  bool first = true;
  for (const auto& [path, depth] : queue.pending_by_path) {
    if (!first) out << ',';
    first = false;
    out << '"' << JsonEscape(path) << "\":" << depth;
  }
  out << "}}";
}

}  // namespace

void RegisterSearchRoutes(HttpServerBase& http,
                          service::SearchService& service,
                          SimulatedClock& clock) {
  http.Route("/", [](const HttpRequest&) {
    return HttpResponse{200, "text/html", kIndexPage};
  });

  http.Route("/search", [&service](const HttpRequest& request) {
    const std::string q = QueryString(request, "q");
    if (q.empty()) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"missing q\"}\n"};
    }
    const int k = QueryInt(request, "k", 10);
    return HttpResponse{200, "application/json",
                        ResultsToJson(service.SearchKeywords(q, k))};
  });

  http.Route("/live", [&service, &clock](const HttpRequest& request) {
    const std::string q = QueryString(request, "q");
    if (q.empty()) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"missing q\"}\n"};
    }
    const int k = QueryInt(request, "k", 10);
    // Live-only search on the text shards via the filtered query API.
    Rng rng(1);
    const auto processed =
        service.query_processor().ProcessKeywords(q, rng);
    core::QueryFilter filter;
    filter.live_only = true;
    const auto pinned = service.PinIndices();
    const auto results = pinned->text->QueryFiltered(
        processed.text_terms, k, clock.Now(), filter);
    std::ostringstream out;
    out << "{\"live_results\":[";
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"stream\":" << results[i].stream
          << ",\"score\":" << results[i].score << '}';
    }
    out << "]}\n";
    return HttpResponse{200, "application/json", out.str()};
  });

  // Batch route: the async server coalesces queued /ingest requests into
  // one call — all their windows land through a single IngestBatch (one
  // RNG acquisition, one pinned pair).
  http.RouteBatch(
      "/ingest", [&service](const std::vector<HttpRequest>& requests) {
        std::vector<HttpResponse> responses(requests.size());
        std::vector<service::IngestOp> ops;
        std::vector<std::size_t> op_requests;  // Requests that added ops.
        for (std::size_t i = 0; i < requests.size(); ++i) {
          ParsedIngest parsed = ParseIngest(requests[i]);
          if (!parsed.error.empty()) {
            responses[i] = HttpResponse{
                400, "application/json",
                "{\"error\":\"" + JsonEscape(parsed.error) + "\"}\n"};
            continue;
          }
          for (auto& op : parsed.ops) ops.push_back(std::move(op));
          op_requests.push_back(i);
          responses[i] = HttpResponse{
              200, "application/json",
              "{\"indexed\":" + std::to_string(parsed.words) + "}\n"};
        }
        if (!ops.empty()) {
          const Status status = service.IngestBatch(ops);
          if (!status.ok()) {
            // The batch is all-or-nothing (the sharded id-reuse guard
            // validates before applying), so every contributing request
            // gets the precondition failure.
            for (const std::size_t i : op_requests) {
              responses[i] = HttpResponse{
                  412, "application/json",
                  "{\"error\":\"" + JsonEscape(status.message()) + "\"}\n"};
            }
          }
        }
        return responses;
      });

  http.Route("/finish", [&service](const HttpRequest& request) {
    const std::string stream = QueryString(request, "stream");
    if (stream.empty()) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"need stream\"}\n"};
    }
    service.FinishStream(std::strtoull(stream.c_str(), nullptr, 10));
    return HttpResponse{200, "application/json", "{\"ok\":true}\n"};
  });

  http.Route("/pop", [&service](const HttpRequest& request) {
    const std::string stream = QueryString(request, "stream");
    const int delta = QueryInt(request, "delta", 1);
    if (stream.empty() || delta <= 0) {
      return HttpResponse{400, "application/json",
                          "{\"error\":\"need stream and delta\"}\n"};
    }
    service.UpdatePopularity(std::strtoull(stream.c_str(), nullptr, 10),
                             static_cast<std::uint64_t>(delta));
    return HttpResponse{200, "application/json", "{\"ok\":true}\n"};
  });

  http.Route("/stats", [&service, &http](const HttpRequest&) {
    const auto pinned = service.PinIndices();
    const shard::IndexShardSet& text = *pinned->text;
    const shard::IndexShardSet& sound = *pinned->sound;
    std::size_t text_postings = 0, sound_postings = 0, text_runs = 0;
    std::size_t streams = 0, live_streams = 0;
    std::uint64_t merges = 0;
    for (int s = 0; s < text.num_shards(); ++s) {
      const core::RtsiIndex& index = text.shard_index(s);
      text_postings += index.tree().total_postings();
      text_runs += index.tree().num_runs();
      streams += index.stream_table().size();
      live_streams += index.live_table().num_streams();
      merges += index.GetMergeStats().merges;
    }
    for (int s = 0; s < sound.num_shards(); ++s) {
      sound_postings += sound.shard_index(s).tree().total_postings();
    }
    std::ostringstream out;
    out << "{\"text_postings\":" << text_postings
        << ",\"sound_postings\":" << sound_postings
        << ",\"text_levels\":" << text.shard_index(0).tree().num_levels()
        << ",\"text_runs\":" << text_runs << ",\"policy\":\""
        << lsm::MergePolicyName(text.shard_index(0).tree().policy())
        << "\",\"merges\":" << merges << ",\"streams\":" << streams
        << ",\"live_streams\":" << live_streams
        << ",\"words\":" << service.text_dictionary().size()
        << ",\"lattice_units\":" << service.sound_dictionary().size()
        << ",\"memory_bytes\":" << (text.MemoryBytes() + sound.MemoryBytes())
        << ",\"num_shards\":" << text.num_shards() << ",\"shards\":";
    AppendShardArray(out, text);
    out << ",\"queue\":";
    AppendQueueStats(out, http.QueueStats());
    out << "}\n";
    return HttpResponse{200, "application/json", out.str()};
  });
}

}  // namespace rtsi::server
