#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace rtsi::server {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    default:
      return "Unknown";
  }
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size()) {
      const int hi = HexValue(in[i + 1]);
      const int lo = HexValue(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(in[i]);
      }
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, HttpHandler handler) {
  routes_[path] = std::move(handler);
}

Status HttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed for port " +
                            std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  // Read until the end of the headers (requests are small GETs).
  std::string raw;
  char buf[4096];
  while (raw.find("\r\n\r\n") == std::string::npos &&
         raw.size() < 64 * 1024) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  HttpRequest request;
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    response = {400, "text/plain", "bad request\n"};
  } else {
    // "METHOD /path?query HTTP/1.x"
    const std::string line = raw.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      response = {400, "text/plain", "bad request line\n"};
    } else {
      request.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t question = target.find('?');
      if (question != std::string::npos) {
        std::string query_string = target.substr(question + 1);
        target.resize(question);
        std::size_t pos = 0;
        while (pos < query_string.size()) {
          std::size_t amp = query_string.find('&', pos);
          if (amp == std::string::npos) amp = query_string.size();
          const std::string pair = query_string.substr(pos, amp - pos);
          const std::size_t eq = pair.find('=');
          if (eq != std::string::npos) {
            request.query[UrlDecode(pair.substr(0, eq))] =
                UrlDecode(pair.substr(eq + 1));
          } else if (!pair.empty()) {
            request.query[UrlDecode(pair)] = "";
          }
          pos = amp + 1;
        }
      }
      request.path = UrlDecode(target);

      auto it = routes_.find(request.path);
      if (it == routes_.end()) {
        response = {404, "text/plain", "not found\n"};
      } else {
        response = it->second(request);
      }
    }
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  (void)!::write(fd, header, std::strlen(header));
  (void)!::write(fd, response.body.data(), response.body.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace rtsi::server
