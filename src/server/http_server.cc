#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>

#include "server/async_http_server.h"

namespace rtsi::server {
namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

/// Parses "a=1&b=hello+there" into decoded pairs.
void ParseQueryString(const std::string& query_string,
                      std::map<std::string, std::string>& out) {
  std::size_t pos = 0;
  while (pos < query_string.size()) {
    std::size_t amp = query_string.find('&', pos);
    if (amp == std::string::npos) amp = query_string.size();
    const std::string pair = query_string.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      out[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    } else if (!pair.empty()) {
      out[UrlDecode(pair)] = "";
    }
    pos = amp + 1;
  }
}

}  // namespace

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size()) {
      const int hi = HexValue(in[i + 1]);
      const int lo = HexValue(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(in[i]);
      }
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace internal {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool http11,
                              bool keep_alive) {
  std::string out = http11 ? "HTTP/1.1 " : "HTTP/1.0 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusText(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

RequestParser::Result RequestParser::Parse() {
  if (error_ != 0) return Result::kError;
  if (!have_head_) {
    const std::size_t head_end = buf_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      // Nothing to bound an attacker but the cap: a head that has not
      // terminated within max_head_ bytes is rejected outright.
      if (buf_.size() > max_head_) {
        error_ = 400;
        return Result::kError;
      }
      return Result::kNeedMore;
    }
    if (head_end > max_head_) {
      error_ = 400;
      return Result::kError;
    }

    // "METHOD /path?query HTTP/1.x"
    const std::size_t line_end = buf_.find("\r\n");
    const std::string line = buf_.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      error_ = 400;
      return Result::kError;
    }
    request_.method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = line.substr(sp2 + 1);
    keep_alive_ = version == "HTTP/1.1";

    const std::size_t question = target.find('?');
    if (question != std::string::npos) {
      ParseQueryString(target.substr(question + 1), request_.query);
      target.resize(question);
    }
    request_.path = UrlDecode(target);

    // Headers: only Content-Length and Connection matter to us.
    std::uint64_t content_length = 0;
    std::size_t pos = line_end + 2;
    while (pos < head_end) {
      std::size_t eol = buf_.find("\r\n", pos);
      if (eol == std::string::npos || eol > head_end) eol = head_end;
      const std::size_t colon = buf_.find(':', pos);
      if (colon != std::string::npos && colon < eol) {
        std::string name = ToLower(buf_.substr(pos, colon - pos));
        std::size_t vstart = colon + 1;
        while (vstart < eol && buf_[vstart] == ' ') ++vstart;
        const std::string value = buf_.substr(vstart, eol - vstart);
        if (name == "content-length") {
          content_length = std::strtoull(value.c_str(), nullptr, 10);
        } else if (name == "connection") {
          const std::string lowered = ToLower(value);
          if (lowered == "close") keep_alive_ = false;
          if (lowered == "keep-alive") keep_alive_ = true;
        }
      }
      pos = eol + 2;
    }
    if (content_length > max_body_) {
      error_ = 413;
      return Result::kError;
    }
    have_head_ = true;
    body_start_ = head_end + 4;
    body_len_ = static_cast<std::size_t>(content_length);
  }
  if (buf_.size() < body_start_ + body_len_) return Result::kNeedMore;
  request_.body = buf_.substr(body_start_, body_len_);
  return Result::kDone;
}

void RequestParser::Reset() {
  buf_.erase(0, body_start_ + body_len_);
  have_head_ = false;
  body_start_ = 0;
  body_len_ = 0;
  keep_alive_ = false;
  error_ = 0;
  request_ = HttpRequest{};
}

}  // namespace internal

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, HttpHandler handler) {
  routes_[path] = std::move(handler);
}

void HttpServer::RouteBatch(const std::string& path,
                            HttpBatchHandler handler) {
  // The blocking server handles one request at a time; a batch route is
  // just a route that always sees single-element batches.
  routes_[path] = [handler = std::move(handler)](const HttpRequest& request) {
    const auto responses = handler({request});
    return responses.empty() ? HttpResponse{500, "text/plain", "no response\n"}
                             : responses.front();
  };
}

ServerQueueStats HttpServer::QueueStats() const {
  ServerQueueStats stats;
  stats.accepted = requests_.load(std::memory_order_relaxed);
  return stats;
}

Status HttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed for port " +
                            std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the blocked accept() but keep the fd alive until the thread has
  // joined: a connection being handled right now finishes its response
  // (drain), and the fd number can't be recycled under the loop.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  internal::RequestParser parser(config_.max_head_bytes,
                                 config_.max_body_bytes);
  char buf[4096];
  internal::RequestParser::Result result =
      internal::RequestParser::Result::kNeedMore;
  bool got_bytes = false;
  while (result == internal::RequestParser::Result::kNeedMore) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    got_bytes = true;
    parser.Append(buf, static_cast<std::size_t>(n));
    result = parser.Parse();
  }
  if (!got_bytes) return;  // Connected and left without a byte.

  HttpResponse response;
  if (result == internal::RequestParser::Result::kError) {
    response = {parser.error_status(), "text/plain", "bad request\n"};
  } else if (result == internal::RequestParser::Result::kNeedMore) {
    response = {400, "text/plain", "truncated request\n"};
  } else {
    const HttpRequest& request = parser.request();
    auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response = {404, "text/plain", "not found\n"};
    } else {
      response = it->second(request);
    }
  }

  const std::string wire =
      internal::SerializeResponse(response, /*http11=*/false,
                                  /*keep_alive=*/false);
  (void)!::write(fd, wire.data(), wire.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
}

std::unique_ptr<HttpServerBase> MakeHttpServer(const ServerConfig& config) {
  if (config.async) return std::make_unique<AsyncHttpServer>(config);
  return std::make_unique<HttpServer>(config);
}

}  // namespace rtsi::server
