// AsyncHttpServer: the epoll front-end (DESIGN.md §6i).
//
// Threading model — one network thread owns ALL socket I/O:
//
//   * The network thread runs the epoll loop (edge-triggered), accepts,
//     reads, parses, writes, and is the only thread that ever touches a
//     connection's state. Workers never see a file descriptor.
//   * Parsed requests are handed to a worker pool through a bounded
//     pending queue; finished responses come back through a completion
//     queue + eventfd wakeup, and the network thread serializes them onto
//     the wire.
//   * Completions are keyed by (fd, generation): if the client vanished
//     and the fd was recycled for a new connection while its request was
//     still computing, the stale completion is dropped instead of being
//     written to a stranger (the classic fd-reuse ABA).
//
// Admission control: when `max_pending` requests are already queued, new
// requests are answered 503 + Retry-After directly by the network thread
// — the queue can't grow without bound and overload degrades into fast,
// explicit shedding instead of collapse. Batch routes (RouteBatch) let a
// worker drain up to `max_batch` queued same-path requests in one handler
// call (insert batching: one RNG acquisition + one pinned index pair per
// batch instead of per request).
//
// Keep-alive: HTTP/1.1 connections persist (one request in flight per
// connection; pipelined bytes wait buffered until the response is out).
// Stop() drains: the listener closes first, queued and in-flight requests
// finish, their responses flush, then threads join.

#ifndef RTSI_SERVER_ASYNC_HTTP_SERVER_H_
#define RTSI_SERVER_ASYNC_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/http_server.h"

namespace rtsi::server {

class AsyncHttpServer : public HttpServerBase {
 public:
  explicit AsyncHttpServer(const ServerConfig& config);
  ~AsyncHttpServer() override;

  AsyncHttpServer(const AsyncHttpServer&) = delete;
  AsyncHttpServer& operator=(const AsyncHttpServer&) = delete;

  void Route(const std::string& path, HttpHandler handler) override;
  void RouteBatch(const std::string& path, HttpBatchHandler handler) override;
  Status Start(int port) override;
  void Stop() override;
  int port() const override { return port_; }
  std::uint64_t requests_served() const override {
    return requests_.load(std::memory_order_relaxed);
  }
  ServerQueueStats QueueStats() const override;

 private:
  /// Per-connection state machine; owned and mutated only by the network
  /// thread.
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    internal::RequestParser parser;
    std::string out;            // Bytes not yet written.
    std::size_t out_off = 0;
    bool in_flight = false;     // A request of this conn is queued/computing.
    bool close_after_write = false;
    bool want_write = false;    // EPOLLOUT currently armed.
    bool read_closed = false;   // Peer EOF'd (may still be owed a response).

    Conn(int fd_in, std::uint64_t gen_in, std::size_t max_head,
         std::size_t max_body)
        : fd(fd_in), gen(gen_in), parser(max_head, max_body) {}
  };

  struct Work {
    int fd = -1;
    std::uint64_t gen = 0;
    HttpRequest request;
    bool keep_alive = false;
  };

  struct Done {
    int fd = -1;
    std::uint64_t gen = 0;
    HttpResponse response;
    bool keep_alive = false;
  };

  void NetLoop();
  void WorkerLoop();
  void AcceptNew();
  void OnReadable(Conn& conn);
  /// Drives the connection until it blocks on I/O, on a worker, or
  /// closes. Invalidates `conn` if it closes. Network thread only.
  void Pump(Conn& conn);
  /// Parses buffered bytes; admits to the worker queue or sheds (503).
  /// Returns false when no complete request is buffered.
  bool MaybeDispatch(Conn& conn);
  /// Serializes `response` onto the connection's output buffer.
  void SendResponse(Conn& conn, const HttpResponse& response,
                    bool keep_alive);
  /// Returns false on a hard write error (peer gone; close the conn).
  bool FlushWrites(Conn& conn);
  void CloseConn(int fd);
  void DrainCompletions();
  void ArmWrite(Conn& conn, bool enable);

  ServerConfig config_;
  std::map<std::string, HttpHandler> routes_;
  std::map<std::string, HttpBatchHandler> batch_routes_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread net_thread_;
  std::vector<std::thread> workers_;

  // Worker handoff.
  mutable std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Work> pending_;
  std::size_t in_worker_ = 0;  // Requests currently inside handlers.

  // Completions back to the network thread.
  std::mutex done_mu_;
  std::vector<Done> done_;

  // Network-thread-owned connection table.
  std::unordered_map<int, Conn> conns_;
  std::uint64_t next_gen_ = 1;
  std::atomic<std::size_t> conn_count_{0};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
};

}  // namespace rtsi::server

#endif  // RTSI_SERVER_ASYNC_HTTP_SERVER_H_
