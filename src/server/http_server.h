// Embedded HTTP front-ends (raw POSIX sockets, no dependencies).
//
// Two servers behind one interface:
//
//   * HttpServer — the original blocking demo server: one accept thread,
//     requests handled sequentially. Simple, deterministic, right for
//     examples/ and single-client tests.
//   * AsyncHttpServer (server/async_http_server.h) — the production-shaped
//     front-end: epoll edge-triggered network loop, per-connection state
//     machines, keep-alive, a worker pool, request batching and admission
//     control (DESIGN.md §6i).
//
// `MakeHttpServer(config)` picks one by `ServerConfig::async`. Both parse
// with the same incremental RequestParser, enforce the same request-line /
// body caps (400 / 413), and serve the same Route/RouteBatch handlers.

#ifndef RTSI_SERVER_HTTP_SERVER_H_
#define RTSI_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rtsi::server {

struct HttpRequest {
  std::string method;
  std::string path;                          // Decoded, without query.
  std::map<std::string, std::string> query;  // Decoded key=value pairs.
  std::string body;                          // POST payload (may be empty).
};

struct HttpResponse {
  HttpResponse() = default;
  HttpResponse(int status_in, std::string content_type_in,
               std::string body_in)
      : status(status_in),
        content_type(std::move(content_type_in)),
        body(std::move(body_in)) {}

  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers (e.g. {"Retry-After", "1"} on a 503).
  std::vector<std::pair<std::string, std::string>> headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Handles a batch of requests to one path in order; must return exactly
/// one response per request. The async server coalesces queued requests
/// to a batch route into one call (insert batching); the blocking server
/// calls it with single-element batches.
using HttpBatchHandler =
    std::function<std::vector<HttpResponse>(const std::vector<HttpRequest>&)>;

struct ServerConfig {
  /// false = blocking demo server, true = epoll async server.
  bool async = false;
  /// Async: worker threads computing handler responses.
  int workers = 2;
  /// Async admission control: when this many requests are already queued
  /// for the workers, new requests are shed with 503 + Retry-After.
  std::size_t max_pending = 128;
  /// Async: max queued same-path requests dispatched as one batch.
  std::size_t max_batch = 16;
  /// Request line + headers cap; longer heads get 400 (both servers).
  std::size_t max_head_bytes = 16 * 1024;
  /// Body cap; a larger Content-Length gets 413 (both servers).
  std::size_t max_body_bytes = 1 << 20;
};

/// Point-in-time queue depths and shed counters (async; the blocking
/// server reports zeros for the queue fields).
struct ServerQueueStats {
  std::size_t pending = 0;              // Requests waiting for a worker.
  std::size_t in_flight = 0;            // Requests being computed now.
  std::size_t connections = 0;          // Open client sockets.
  std::uint64_t accepted = 0;           // Requests admitted to the queue.
  std::uint64_t shed = 0;               // 503s from admission control.
  std::uint64_t batches = 0;            // Batch dispatches to workers.
  std::uint64_t batched_requests = 0;   // Requests inside those batches.
  std::map<std::string, std::size_t> pending_by_path;  // Queue depth per endpoint.
};

class HttpServerBase {
 public:
  virtual ~HttpServerBase() = default;

  /// Registers a handler for an exact path (e.g. "/search").
  virtual void Route(const std::string& path, HttpHandler handler) = 0;

  /// Registers a batchable handler: the async server may hand it several
  /// queued requests at once. Routes must be registered before Start.
  virtual void RouteBatch(const std::string& path,
                          HttpBatchHandler handler) = 0;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  virtual Status Start(int port) = 0;

  /// Stops serving: no new connections, in-flight requests drain, worker
  /// and network threads join. Idempotent.
  virtual void Stop() = 0;

  /// The bound port (valid after Start succeeds).
  virtual int port() const = 0;

  virtual std::uint64_t requests_served() const = 0;

  virtual ServerQueueStats QueueStats() const = 0;
};

/// The blocking demo server: one accept thread, sequential handling,
/// Connection: close per request.
class HttpServer : public HttpServerBase {
 public:
  HttpServer() = default;
  explicit HttpServer(const ServerConfig& config) : config_(config) {}
  ~HttpServer() override;

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void Route(const std::string& path, HttpHandler handler) override;
  void RouteBatch(const std::string& path, HttpBatchHandler handler) override;
  Status Start(int port) override;
  void Stop() override;
  int port() const override { return port_; }
  std::uint64_t requests_served() const override {
    return requests_.load(std::memory_order_relaxed);
  }
  ServerQueueStats QueueStats() const override;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  ServerConfig config_;
  std::map<std::string, HttpHandler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread accept_thread_;
};

/// Builds the server `config` asks for (blocking or async).
std::unique_ptr<HttpServerBase> MakeHttpServer(const ServerConfig& config);

/// Decodes %XX and '+' in a URL component.
std::string UrlDecode(const std::string& in);

/// Escapes a string for embedding in a JSON value.
std::string JsonEscape(const std::string& in);

namespace internal {

/// Incremental HTTP/1.x request parser shared by both servers. Feed bytes
/// with Append, then call Parse until it stops returning kNeedMore; after
/// kDone, Reset consumes the parsed request and keeps any pipelined bytes
/// for the next one.
class RequestParser {
 public:
  enum class Result { kNeedMore, kDone, kError };

  RequestParser(std::size_t max_head_bytes, std::size_t max_body_bytes)
      : max_head_(max_head_bytes), max_body_(max_body_bytes) {}

  void Append(const char* data, std::size_t size) { buf_.append(data, size); }

  Result Parse();

  /// Valid after Parse returned kDone.
  HttpRequest& request() { return request_; }
  /// Whether the client asked to keep the connection open (HTTP/1.1
  /// default, or an explicit Connection: keep-alive).
  bool keep_alive() const { return keep_alive_; }
  /// 400 or 413; valid after Parse returned kError.
  int error_status() const { return error_; }

  /// Consumes the parsed request's bytes and re-arms for the next one.
  void Reset();

  bool has_buffered_bytes() const { return !buf_.empty(); }

 private:
  std::size_t max_head_;
  std::size_t max_body_;
  std::string buf_;
  bool have_head_ = false;
  std::size_t body_start_ = 0;
  std::size_t body_len_ = 0;
  bool keep_alive_ = false;
  int error_ = 0;
  HttpRequest request_;
};

const char* StatusText(int status);

/// Serializes status line + headers + body. `http11` picks the version
/// string; `keep_alive` sets the Connection header.
std::string SerializeResponse(const HttpResponse& response, bool http11,
                              bool keep_alive);

}  // namespace internal
}  // namespace rtsi::server

#endif  // RTSI_SERVER_HTTP_SERVER_H_
