// Minimal embedded HTTP/1.0 server (raw POSIX sockets, no dependencies).
//
// Demo-grade by design: one accept thread, requests handled sequentially,
// GET only. It exists to serve the paper's future-work item — "a
// demonstration with a user friendly interface" — over the search
// service (see server/search_handler.h and examples/http_demo.cpp).

#ifndef RTSI_SERVER_HTTP_SERVER_H_
#define RTSI_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace rtsi::server {

struct HttpRequest {
  std::string method;
  std::string path;                          // Decoded, without query.
  std::map<std::string, std::string> query;  // Decoded key=value pairs.
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact path (e.g. "/search").
  void Route(const std::string& path, HttpHandler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop on
  /// a background thread.
  Status Start(int port);

  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start succeeds).
  int port() const { return port_; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::map<std::string, HttpHandler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread accept_thread_;
};

/// Decodes %XX and '+' in a URL component.
std::string UrlDecode(const std::string& in);

/// Escapes a string for embedding in a JSON value.
std::string JsonEscape(const std::string& in);

}  // namespace rtsi::server

#endif  // RTSI_SERVER_HTTP_SERVER_H_
