#include "storage/file_io.h"

#include <cstring>

#include "common/crc32.h"
#include "common/varint.h"
#include "storage/fs.h"

namespace rtsi::storage {
namespace {

constexpr char kMagic[8] = {'R', 'T', 'S', 'I', 'S', 'N', 'A', 'P'};

}  // namespace

SnapshotWriter::~SnapshotWriter() {
  if (file_ != nullptr) {
    // Finish() was never called: abandon the temporary.
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

Status SnapshotWriter::Open(const std::string& path,
                            std::uint32_t format_version) {
  final_path_ = path;
  tmp_path_ = path + ".tmp";
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open for writing: " + tmp_path_);
  }
  fs::TrackOpen(tmp_path_, /*truncated=*/true);
  Raw(kMagic, sizeof(kMagic));
  WriteU32(format_version);
  return Status::Ok();
}

void SnapshotWriter::Raw(const void* data, std::size_t size) {
  if (failed_ || file_ == nullptr || size == 0) return;
  if (!fs::Write(file_, data, size, tmp_path_)) {
    failed_ = true;
    return;
  }
  crc_ = Crc32(crc_, data, size);
  bytes_written_ += size;
}

void SnapshotWriter::WriteU32(std::uint32_t value) {
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  Raw(buf, sizeof(buf));
}

void SnapshotWriter::WriteU64(std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  Raw(buf, sizeof(buf));
}

void SnapshotWriter::WriteVarint(std::uint64_t value) {
  std::vector<std::uint8_t> buf;
  PutVarint64(buf, value);
  Raw(buf.data(), buf.size());
}

void SnapshotWriter::WriteDouble(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void SnapshotWriter::WriteBytes(const void* data, std::size_t size) {
  Raw(data, size);
}

void SnapshotWriter::WriteBlob(const std::vector<std::uint8_t>& blob) {
  WriteVarint(blob.size());
  Raw(blob.data(), blob.size());
}

void SnapshotWriter::WriteString(const std::string& s) {
  WriteVarint(s.size());
  Raw(s.data(), s.size());
}

Status SnapshotWriter::Finish() {
  if (file_ == nullptr) return Status::FailedPrecondition("not open");
  // Footer: CRC over everything before it (not CRC-protected itself).
  const std::uint32_t crc = crc_;
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(crc >> (8 * i));
  if (!failed_ && !fs::Write(file_, buf, 4, tmp_path_)) failed_ = true;
  // Commit sequence: data durable in the temporary, then the atomic
  // rename, then the directory entry durable. Only after the final
  // fsync is the new file guaranteed to survive a crash.
  if (!failed_ && !fs::FlushAndSync(file_, tmp_path_).ok()) failed_ = true;
  if (std::fclose(file_) != 0) failed_ = true;
  file_ = nullptr;
  if (!failed_ && !fs::Rename(tmp_path_, final_path_).ok()) failed_ = true;
  if (failed_) {
    std::remove(tmp_path_.c_str());
    return Status::Internal("snapshot write failed: " + final_path_);
  }
  return fs::SyncParentDir(final_path_);
}

Status SnapshotReader::Open(const std::string& path,
                            std::uint32_t expected_version) {
  return Open(path, expected_version, expected_version);
}

Status SnapshotReader::Open(const std::string& path,
                            std::uint32_t min_version,
                            std::uint32_t max_version) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size < static_cast<long>(sizeof(kMagic) + 8)) {
    std::fclose(file);
    return Status::Internal("snapshot truncated: " + path);
  }
  data_.resize(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(data_.data(), 1, data_.size(), file);
  std::fclose(file);
  if (read != data_.size()) {
    return Status::Internal("short read: " + path);
  }

  if (std::memcmp(data_.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad snapshot magic: " + path);
  }
  payload_end_ = data_.size() - 4;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(data_[payload_end_ + i])
                  << (8 * i);
  }
  const std::uint32_t actual_crc = Crc32(0, data_.data(), payload_end_);
  if (stored_crc != actual_crc) {
    return Status::Internal("snapshot checksum mismatch: " + path);
  }

  pos_ = sizeof(kMagic);
  std::uint32_t version = 0;
  if (!ReadU32(version) || version < min_version || version > max_version) {
    return Status::InvalidArgument("unsupported snapshot version");
  }
  version_ = version;
  return Status::Ok();
}

bool SnapshotReader::ReadRaw(void* out, std::size_t size) {
  if (pos_ + size > payload_end_) return false;
  std::memcpy(out, data_.data() + pos_, size);
  pos_ += size;
  return true;
}

bool SnapshotReader::ReadU32(std::uint32_t& value) {
  std::uint8_t buf[4];
  if (!ReadRaw(buf, sizeof(buf))) return false;
  value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  return true;
}

bool SnapshotReader::ReadU64(std::uint64_t& value) {
  std::uint8_t buf[8];
  if (!ReadRaw(buf, sizeof(buf))) return false;
  value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return true;
}

bool SnapshotReader::ReadVarint(std::uint64_t& value) {
  std::size_t pos = pos_;
  if (!GetVarint64(data_.data(), payload_end_, pos, value)) return false;
  pos_ = pos;
  return true;
}

bool SnapshotReader::ReadDouble(double& value) {
  std::uint64_t bits = 0;
  if (!ReadU64(bits)) return false;
  std::memcpy(&value, &bits, sizeof(value));
  return true;
}

bool SnapshotReader::ReadBlob(std::vector<std::uint8_t>& blob) {
  std::uint64_t size = 0;
  if (!ReadVarint(size)) return false;
  if (pos_ + size > payload_end_) return false;
  blob.assign(data_.begin() + pos_, data_.begin() + pos_ + size);
  pos_ += size;
  return true;
}

bool SnapshotReader::ReadString(std::string& s) {
  std::uint64_t size = 0;
  if (!ReadVarint(size)) return false;
  if (pos_ + size > payload_end_) return false;
  s.assign(reinterpret_cast<const char*>(data_.data() + pos_),
           static_cast<std::size_t>(size));
  pos_ += size;
  return true;
}

}  // namespace rtsi::storage
