// Durability: an operation journal (write-ahead log) and point-in-time
// recovery.
//
// DurableIndex decorates any SearchIndex: every mutating operation is
// appended to a journal file (in the human-readable workload-trace
// format, each record carrying a CRC-32 suffix) before being applied.
// Recovery = load the latest snapshot, then replay the journal tail.
// Checkpoint() writes a fresh snapshot and retires the journal.
//
// Crash-consistency contract (see DESIGN.md "Durability & crash
// consistency"):
//   * With flush_each_record, Append() returning OK means the record is
//     durable (fdatasync'd). Without it, records become durable at the
//     group-commit boundary, at Flush(), or at Checkpoint().
//   * Checkpoint() is atomic: the snapshot is written to a temporary,
//     fsync'd and renamed into place, and journals are rotated with
//     monotonically increasing epochs so that a crash at ANY point
//     leaves either the old snapshot plus a replayable journal or the
//     new snapshot — never a state that loses acknowledged operations
//     or replays an operation twice.
//   * On a journal append/flush failure the index fails stop into a
//     read-only degraded mode: queries keep working, mutations are
//     rejected, and in-memory state never diverges from durable state.
//   * Replay tolerates a torn or corrupt FINAL record (the tail of an
//     interrupted write) — it is dropped with a warning and the file is
//     truncated back to the last good record. Corruption anywhere else
//     fails recovery hard.
//
// The journal format is workload::Trace's line format, so journals are
// also valid benchmark traces.

#ifndef RTSI_STORAGE_JOURNAL_H_
#define RTSI_STORAGE_JOURNAL_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/rtsi_index.h"
#include "workload/trace.h"

namespace rtsi::storage {

struct JournalOptions {
  /// fdatasync after every record: Append() == durable.
  bool flush_each_record = false;
  /// When not flushing each record, fdatasync every N records (group
  /// commit). 0 disables the interval; durability then comes from
  /// Sync()/Close()/Checkpoint().
  std::uint32_t group_commit_records = 0;
};

/// Appends trace-format operation lines (with CRC-32 record suffixes) to
/// a file. Thread-safe.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens for append (creates if missing). A freshly created file gets
  /// an epoch header recording which snapshot generation its records
  /// apply on top of; appending to an existing file keeps its epoch.
  Status Open(const std::string& path, const JournalOptions& options,
              std::uint64_t epoch = 0);
  Status Open(const std::string& path, bool flush_each_record = false);

  /// Appends one operation. With flush_each_record the record is durable
  /// when this returns OK.
  Status Append(const workload::TraceOp& op);

  /// Makes everything appended so far durable (fflush + fdatasync).
  Status Sync();

  /// Rotates the journal for a checkpoint: syncs and closes the current
  /// file, renames it to `rotated_path`, then starts a fresh journal at
  /// the original path with epoch `new_epoch` and fsyncs the directory.
  /// On failure before the rename the writer keeps the old file open; on
  /// failure after it the writer is closed (callers must treat the
  /// journal as unavailable).
  Status Rotate(const std::string& rotated_path, std::uint64_t new_epoch);

  /// Truncates the journal via rotate-then-unlink: the old records are
  /// moved aside to `<path>.old`, a fresh journal is created and made
  /// durable, and only then is the rotated file removed — no crash
  /// window loses both files.
  Status Reset();

  Status Close();

  /// Records appended to the current file. Survives Close().
  std::uint64_t records_written() const { return records_; }
  std::uint64_t epoch() const { return epoch_; }
  bool is_open() const { return file_ != nullptr; }

 private:
  Status OpenLocked(const std::string& path, std::uint64_t epoch);
  Status SyncLocked();

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  JournalOptions options_;
  std::uint64_t epoch_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t unsynced_records_ = 0;
};

/// What DurableIndex::Open's recovery actually did — surfaced so
/// operators can see replay counts, durations and dropped torn tails.
struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t journals_replayed = 0;   // files whose ops were applied
  std::uint64_t journals_skipped = 0;    // files covered by the snapshot
  std::uint64_t ops_replayed = 0;
  std::uint64_t torn_tails_dropped = 0;
  double replay_seconds = 0.0;
};

/// Summary of a journal file's integrity (see InspectJournal).
struct JournalInspection {
  bool readable = false;
  bool has_epoch_header = false;
  std::uint64_t epoch = 0;
  std::uint64_t records = 0;
  std::uint64_t checksummed_records = 0;
  bool torn_tail = false;
  std::uint64_t torn_tail_offset = 0;
  std::string torn_tail_reason;
  bool corrupt = false;  // mid-file corruption (beyond a torn tail)
  std::uint64_t first_corrupt_offset = 0;
  std::string error;
};

/// Validates every record CRC in a journal without applying anything.
JournalInspection InspectJournal(const std::string& path);

/// A journaled RTSI index: snapshot + journal = crash-recoverable state.
class DurableIndex : public core::SearchIndex {
 public:
  /// Creates/opens the journal at `journal_path` and recovers state from
  /// the snapshot plus any journal files. `stats`, when given, receives
  /// what recovery did.
  static Result<std::unique_ptr<DurableIndex>> Open(
      const core::RtsiConfig& config, const std::string& snapshot_path,
      const std::string& journal_path, const JournalOptions& options,
      RecoveryStats* stats = nullptr);
  static Result<std::unique_ptr<DurableIndex>> Open(
      const core::RtsiConfig& config, const std::string& snapshot_path,
      const std::string& journal_path, bool flush_each_record = false,
      RecoveryStats* stats = nullptr);

  // SearchIndex (mutations are journaled before being applied; in
  // degraded mode they are rejected and NOT applied):
  void InsertWindow(StreamId stream, Timestamp now,
                    const std::vector<core::TermCount>& terms,
                    bool live) override;
  void FinishStream(StreamId stream) override;
  void DeleteStream(StreamId stream) override;
  void UpdatePopularity(StreamId stream, std::uint64_t delta) override;
  std::vector<core::ScoredStream> Query(const std::vector<TermId>& terms,
                                        int k, Timestamp now,
                                        core::QueryStats* stats) override;
  using core::SearchIndex::Query;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "RTSI+journal"; }

  /// Writes a snapshot of the current state and retires the journal
  /// (rotate, snapshot, unlink — atomic under crashes). A successful
  /// checkpoint clears degraded mode.
  Status Checkpoint();

  /// Forces everything journaled so far to disk (group-commit callers).
  Status Flush();

  /// True once a journal append/flush has failed: the index is
  /// read-only and mutations are dropped (fail-stop, e.g. disk-full).
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }
  /// The failure that triggered degraded mode (OK when healthy).
  Status last_error() const;

  core::RtsiIndex& index() { return *index_; }

 private:
  DurableIndex(std::unique_ptr<core::RtsiIndex> index,
               std::string snapshot_path, std::string journal_path);

  /// Journals one op; applies it to the in-memory index only on success.
  void Mutate(const workload::TraceOp& op);
  void EnterDegraded(const Status& status);

  std::unique_ptr<core::RtsiIndex> index_;
  std::string snapshot_path_;
  std::string journal_path_;
  JournalWriter journal_;
  std::atomic<bool> degraded_{false};
  mutable std::mutex error_mu_;
  Status last_error_;
};

}  // namespace rtsi::storage

#endif  // RTSI_STORAGE_JOURNAL_H_
