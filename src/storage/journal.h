// Durability: an operation journal (write-ahead log) and point-in-time
// recovery.
//
// DurableIndex decorates any SearchIndex: every mutating operation is
// appended to a journal file (in the human-readable workload-trace
// format) before being applied. Recovery = load the latest snapshot,
// then replay the journal tail. Checkpoint() writes a fresh snapshot and
// truncates the journal.
//
// The journal format is workload::Trace's line format, so journals are
// also valid benchmark traces.

#ifndef RTSI_STORAGE_JOURNAL_H_
#define RTSI_STORAGE_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/rtsi_index.h"
#include "workload/trace.h"

namespace rtsi::storage {

/// Appends trace-format operation lines to a file, optionally flushing
/// after every record.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens for append (creates if missing).
  Status Open(const std::string& path, bool flush_each_record = false);

  /// Appends one operation. Thread-safe.
  Status Append(const workload::TraceOp& op);

  /// Truncates the journal (after a checkpoint).
  Status Reset();

  Status Close();

  std::uint64_t records_written() const { return records_; }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  bool flush_each_record_ = false;
  std::uint64_t records_ = 0;
};

/// A journaled RTSI index: snapshot + journal = crash-recoverable state.
class DurableIndex : public core::SearchIndex {
 public:
  /// Creates/opens the journal at `journal_path`. `flush_each_record`
  /// trades insert latency for durability of every single op.
  static Result<std::unique_ptr<DurableIndex>> Open(
      const core::RtsiConfig& config, const std::string& snapshot_path,
      const std::string& journal_path, bool flush_each_record = false);

  // SearchIndex (mutations are journaled before being applied):
  void InsertWindow(StreamId stream, Timestamp now,
                    const std::vector<core::TermCount>& terms,
                    bool live) override;
  void FinishStream(StreamId stream) override;
  void DeleteStream(StreamId stream) override;
  void UpdatePopularity(StreamId stream, std::uint64_t delta) override;
  std::vector<core::ScoredStream> Query(const std::vector<TermId>& terms,
                                        int k, Timestamp now,
                                        core::QueryStats* stats) override;
  using core::SearchIndex::Query;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "RTSI+journal"; }

  /// Writes a snapshot of the current state and truncates the journal.
  Status Checkpoint();

  core::RtsiIndex& index() { return *index_; }

 private:
  DurableIndex(std::unique_ptr<core::RtsiIndex> index,
               std::string snapshot_path);

  std::unique_ptr<core::RtsiIndex> index_;
  std::string snapshot_path_;
  JournalWriter journal_;
};

}  // namespace rtsi::storage

#endif  // RTSI_STORAGE_JOURNAL_H_
