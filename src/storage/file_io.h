// Buffered, checksummed file primitives for index snapshots.
//
// A snapshot is a stream of length-prefixed records; the writer maintains
// a running CRC-32 over everything written and appends it in a footer,
// which the reader verifies before the caller trusts any decoded content.
//
// Writes are atomic with respect to crashes: the writer streams into
// `<path>.tmp`, and Finish() fsyncs the data, renames it over `path`, and
// fsyncs the parent directory. A crash at any point leaves either the
// complete previous file or the complete new one — never a torn mix.

#ifndef RTSI_STORAGE_FILE_IO_H_
#define RTSI_STORAGE_FILE_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace rtsi::storage {

class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Starts an atomic write of `path`: creates/truncates `<path>.tmp`
  /// and writes the header there. `path` itself is untouched until
  /// Finish() renames the temporary over it.
  Status Open(const std::string& path, std::uint32_t format_version);

  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteVarint(std::uint64_t value);
  void WriteDouble(double value);
  void WriteBytes(const void* data, std::size_t size);
  void WriteBlob(const std::vector<std::uint8_t>& blob);  // Length-prefixed.
  void WriteString(const std::string& s);                 // Length-prefixed.

  /// Writes the CRC footer, makes the temporary durable (fdatasync),
  /// renames it over the final path and fsyncs the parent directory.
  /// Must be the last call. On failure the temporary is removed and the
  /// previous file (if any) is left intact.
  Status Finish();

  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  void Raw(const void* data, std::size_t size);

  std::FILE* file_ = nullptr;
  std::string final_path_;
  std::string tmp_path_;
  std::uint32_t crc_ = 0;
  std::uint64_t bytes_written_ = 0;
  bool failed_ = false;
};

class SnapshotReader {
 public:
  SnapshotReader() = default;

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Reads the whole file, verifies magic, version and CRC.
  Status Open(const std::string& path, std::uint32_t expected_version);

  /// As above, but accepts any format version in [min_version,
  /// max_version]; the caller branches on version() for older layouts.
  Status Open(const std::string& path, std::uint32_t min_version,
              std::uint32_t max_version);

  /// Format version read from the header (valid after a successful Open).
  std::uint32_t version() const { return version_; }

  bool ReadU32(std::uint32_t& value);
  bool ReadU64(std::uint64_t& value);
  bool ReadVarint(std::uint64_t& value);
  bool ReadDouble(double& value);
  bool ReadBlob(std::vector<std::uint8_t>& blob);
  bool ReadString(std::string& s);

  /// True when every payload byte has been consumed.
  bool AtEnd() const { return pos_ == payload_end_; }

 private:
  bool ReadRaw(void* out, std::size_t size);

  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::size_t payload_end_ = 0;
  std::uint32_t version_ = 0;
};

}  // namespace rtsi::storage

#endif  // RTSI_STORAGE_FILE_IO_H_
