// Crash-safety filesystem primitives.
//
// Every durable mutation in the storage layer (snapshot and journal
// writes, fsyncs, renames, unlinks, directory syncs) goes through these
// helpers so that (a) the fsync/rename discipline lives in one place and
// (b) tests can inject faults and simulate power loss at every syscall
// boundary via storage/fault_injection.h.

#ifndef RTSI_STORAGE_FS_H_
#define RTSI_STORAGE_FS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace rtsi::storage::fs {

bool Exists(const std::string& path);
std::uint64_t FileSize(const std::string& path);  // 0 when missing
std::string ParentDir(const std::string& path);

/// Registers a freshly opened stream with the fault-injection tracker.
/// `truncated` says the open discarded previous content ("wb").
void TrackOpen(const std::string& path, bool truncated);

/// fwrite that honors injected faults (an injected failure writes a
/// partial prefix, modeling a torn write). Returns false on failure.
bool Write(std::FILE* f, const void* data, std::size_t size,
           const std::string& path);

/// fflush + fdatasync: the bytes are durable on return.
Status FlushAndSync(std::FILE* f, const std::string& path);

/// fflush only (no durability guarantee).
Status Flush(std::FILE* f, const std::string& path);

/// Atomic rename. Durable only after SyncParentDir on the target's dir.
Status Rename(const std::string& from, const std::string& to);

Status Remove(const std::string& path);

Status Truncate(const std::string& path, std::uint64_t size);

/// fsync of the directory containing `path` — makes prior renames,
/// creations and unlinks in that directory durable.
Status SyncParentDir(const std::string& path);

}  // namespace rtsi::storage::fs

#endif  // RTSI_STORAGE_FS_H_
