// Test-only fault injection at filesystem syscall boundaries.
//
// Every durable mutation the storage layer performs (write, fsync,
// rename, unlink, directory fsync) is routed through storage/fs.h, which
// consults this singleton when enabled. Tests can:
//
//   * arm a fault at the N-th intercepted syscall — the call fails, and
//     with `crash` set every later call fails too, so the process is
//     "dead" to storage from that point on;
//   * simulate the machine losing power: SimulateCrash() rewrites the
//     tracked files to their last-synced durable state, truncating data
//     that was written but never fsync'd (optionally keeping a prefix of
//     the unsynced tail to model a torn write) and — when requested —
//     undoing renames/unlinks whose parent directory was never fsync'd.
//
// Disabled (the default) the hooks are a single relaxed atomic load; the
// production write path pays nothing.
//
// All tracked files must be closed (e.g. the DurableIndex destroyed)
// before SimulateCrash(), since libc stream buffers are flushed to the
// real filesystem on close and the truncation pass is what removes them
// again.

#ifndef RTSI_STORAGE_FAULT_INJECTION_H_
#define RTSI_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace rtsi::storage {

enum class FaultOp : std::uint8_t {
  kWrite,
  kSync,     // fflush + fdatasync of a file
  kRename,
  kUnlink,
  kDirSync,  // fsync of a parent directory
};

const char* FaultOpName(FaultOp op);

class FaultInjection {
 public:
  static FaultInjection& Instance();

  // -- Test control -------------------------------------------------------
  void Enable();   // clears all state and starts intercepting
  void Disable();  // stops intercepting and forgets tracked state
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Fails the `index`-th intercepted syscall (0-based, counted since
  /// Enable/ClearSchedule). With `crash`, every subsequent intercepted
  /// call fails as well.
  void ArmFaultAt(std::uint64_t index, bool crash);
  /// Disarms any schedule and resets the op counter (tracking state and
  /// durability bookkeeping are kept).
  void ClearSchedule();

  /// Number of intercepted syscalls since Enable/ClearSchedule. Run a
  /// workload once un-armed to enumerate its fault points.
  std::uint64_t ops_seen() const;
  bool crash_triggered() const;

  // -- Crash simulation ---------------------------------------------------
  struct CrashOptions {
    /// Keep this many bytes of each file's unsynced tail instead of
    /// dropping all of it — models a torn (partial) final write.
    std::uint64_t keep_unsynced_tail_bytes = 0;
    /// Undo renames/unlinks that were never made durable by a directory
    /// fsync (the stricter power-loss model).
    bool undo_unsynced_dir_ops = false;
  };
  /// Rewrites all tracked files to their durable state. Callers must have
  /// closed every tracked file first.
  void SimulateCrash(const CrashOptions& options);

  // -- Hooks (called by storage::fs; no-ops unless enabled) ---------------
  /// Returns true if the op should fail. Counts one fault point.
  bool ShouldFail(FaultOp op, const std::string& path);
  void OnOpen(const std::string& path, std::uint64_t size, bool truncated);
  void OnWrite(const std::string& path, std::uint64_t bytes);
  void OnSync(const std::string& path);
  /// Called before/after the real ::rename so the previous content of
  /// `to` can be stashed for undo. CommitRename is skipped on failure.
  void PrepareRename(const std::string& from, const std::string& to);
  void CommitRename(const std::string& from, const std::string& to);
  void PrepareUnlink(const std::string& path);
  void CommitUnlink(const std::string& path);
  void OnDirSync(const std::string& dir);

 private:
  struct FileState {
    std::uint64_t size = 0;         // bytes handed to fwrite so far
    std::uint64_t synced_size = 0;  // size at the last successful sync
  };
  struct PendingDirOp {
    bool is_rename = false;  // else unlink
    std::string from;        // rename only
    std::string path;        // rename target / unlinked path
    bool target_existed = false;
    std::string saved_content;  // previous content of `path`
  };

  FaultInjection() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::uint64_t op_count_ = 0;
  std::optional<std::uint64_t> fail_at_;
  bool crash_on_fault_ = false;
  bool crashed_ = false;
  std::map<std::string, FileState> files_;
  std::vector<PendingDirOp> pending_dir_ops_;
  // Staged Prepare{Rename,Unlink} state awaiting Commit.
  std::optional<PendingDirOp> staged_;
};

}  // namespace rtsi::storage

#endif  // RTSI_STORAGE_FAULT_INJECTION_H_
