// Index snapshots: save the complete state of an RtsiIndex to one
// checksummed file and rebuild an identical index from it.
//
// Sealed components are stored in the Huffman-compressed posting format
// (index/compressed_postings.h) regardless of the in-memory
// representation, so snapshots are compact. The saved state covers the
// configuration, the document-frequency table, the stream-info table
// (including tombstones and component counts), the live-term table, every
// sealed LSM component, and the mutable L0 postings — queries against the
// restored index return byte-identical results.
//
// Saving requires a quiescent index (no concurrent writers).

#ifndef RTSI_STORAGE_SNAPSHOT_H_
#define RTSI_STORAGE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/rtsi_index.h"

namespace rtsi::storage {

/// Current snapshot format version. v2 added the stream `finished` flag
/// (a new bit in the existing flags word) and a per-component
/// live-freshness ceiling varint. v1 files still load: the ceiling is
/// reconstructed from the restored stream table when residencies are
/// re-registered (each resident stream folds its live freshness into the
/// cell), so pruning stays sound and tight; only the `finished` flag is
/// unrecoverable — restored finished streams are merely non-live, so a
/// late out-of-order window could transiently resurrect them.
/// v3 added the journal epoch (a u64 right after the config section):
/// the checkpoint generation this snapshot covers, used by DurableIndex
/// recovery to skip journal files whose operations the snapshot already
/// contains. v1/v2 files load with epoch 0 (replay everything), which
/// matches their pre-epoch semantics.
/// v4 added the per-component skip header (a length-prefixed blob right
/// after the ceiling varint): the term Bloom filter + bound summaries are
/// restored bit-exactly instead of being recomputed. Files <= v3 load
/// with headers rebuilt from the decoded postings — SkipHeader::Build is
/// deterministic, so the rebuilt header is byte-identical to what a v4
/// save of the same component would have carried.
/// v5 added the compaction policy (u32) and tier_runs (u64) to the
/// config section, so a restored tree keeps compacting the way it was
/// configured to. Component entries are unchanged, but v5 snapshots may
/// legitimately carry several components per level and components at
/// level 0 (a frozen, not-yet-merged L0): any pinned view — including
/// one cut mid-cascade — is a valid snapshot, and the next cascade
/// re-plans from whatever run lists were restored. Files <= v4 load with
/// the default policy (geometric, matching their writer's behavior).
inline constexpr std::uint32_t kSnapshotVersion = 5;
inline constexpr std::uint32_t kMinSnapshotVersion = 1;

/// Writes the full index state to `path`. The write is atomic: data goes
/// to `<path>.tmp` and is fsync'd and renamed over `path` (see
/// SnapshotWriter), so a crash never leaves a torn snapshot.
/// `journal_epoch` records the checkpoint generation (0 for snapshots
/// outside the journal protocol, e.g. rtsi_cli build).
Status SaveIndexSnapshot(const core::RtsiIndex& index,
                         const std::string& path,
                         std::uint64_t journal_epoch = 0);

/// Rebuilds an index from `path`. On success the returned index answers
/// queries identically to the saved one. `journal_epoch`, when non-null,
/// receives the stored checkpoint generation (0 for v1/v2 files).
Result<std::unique_ptr<core::RtsiIndex>> LoadIndexSnapshot(
    const std::string& path, std::uint64_t* journal_epoch = nullptr);

}  // namespace rtsi::storage

#endif  // RTSI_STORAGE_SNAPSHOT_H_
