#include "storage/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "storage/fault_injection.h"

namespace rtsi::storage::fs {

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

std::string ParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void TrackOpen(const std::string& path, bool truncated) {
  auto& fi = FaultInjection::Instance();
  if (!fi.enabled()) return;
  fi.OnOpen(path, truncated ? 0 : FileSize(path), truncated);
}

bool Write(std::FILE* f, const void* data, std::size_t size,
           const std::string& path) {
  if (size == 0) return true;
  auto& fi = FaultInjection::Instance();
  if (fi.enabled()) {
    if (fi.ShouldFail(FaultOp::kWrite, path)) {
      // Torn write: a prefix reaches the file, the rest never does.
      const std::size_t partial = size / 2;
      if (partial > 0 && std::fwrite(data, 1, partial, f) == partial) {
        fi.OnWrite(path, partial);
      }
      return false;
    }
    if (std::fwrite(data, 1, size, f) != size) return false;
    fi.OnWrite(path, size);
    return true;
  }
  return std::fwrite(data, 1, size, f) == size;
}

Status FlushAndSync(std::FILE* f, const std::string& path) {
  auto& fi = FaultInjection::Instance();
  if (fi.enabled() && fi.ShouldFail(FaultOp::kSync, path)) {
    return Status::Internal("injected sync failure: " + path);
  }
  if (std::fflush(f) != 0) {
    return Status::Internal("fflush failed: " + path);
  }
  if (::fdatasync(::fileno(f)) != 0) {
    return Status::Internal("fdatasync failed: " + path);
  }
  if (fi.enabled()) fi.OnSync(path);
  return Status::Ok();
}

Status Flush(std::FILE* f, const std::string& path) {
  // No fault point: an fflush carries no durability promise, so tests
  // model its failure via the kWrite point on the preceding append.
  if (std::fflush(f) != 0) {
    return Status::Internal("fflush failed: " + path);
  }
  return Status::Ok();
}

Status Rename(const std::string& from, const std::string& to) {
  auto& fi = FaultInjection::Instance();
  const bool enabled = fi.enabled();
  if (enabled && fi.ShouldFail(FaultOp::kRename, from)) {
    return Status::Internal("injected rename failure: " + from);
  }
  if (enabled) fi.PrepareRename(from, to);
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal("rename failed: " + from + " -> " + to);
  }
  if (enabled) fi.CommitRename(from, to);
  return Status::Ok();
}

Status Remove(const std::string& path) {
  auto& fi = FaultInjection::Instance();
  const bool enabled = fi.enabled();
  if (enabled && fi.ShouldFail(FaultOp::kUnlink, path)) {
    return Status::Internal("injected unlink failure: " + path);
  }
  if (enabled) fi.PrepareUnlink(path);
  if (std::remove(path.c_str()) != 0) {
    return Status::Internal("remove failed: " + path);
  }
  if (enabled) fi.CommitUnlink(path);
  return Status::Ok();
}

Status Truncate(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal("truncate failed: " + path);
  }
  return Status::Ok();
}

Status SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  auto& fi = FaultInjection::Instance();
  if (fi.enabled() && fi.ShouldFail(FaultOp::kDirSync, dir)) {
    return Status::Internal("injected dir sync failure: " + dir);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open dir for fsync: " + dir);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Status::Internal("dir fsync failed: " + dir);
  if (fi.enabled()) fi.OnDirSync(dir);
  return Status::Ok();
}

}  // namespace rtsi::storage::fs
