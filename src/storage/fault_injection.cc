#include "storage/fault_injection.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

namespace rtsi::storage {
namespace {

bool ReadWholeFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read = out.empty()
                               ? 0
                               : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  return read == out.size();
}

bool WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size();
  return std::fclose(f) == 0 && ok;
}

std::string ParentOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kWrite: return "write";
    case FaultOp::kSync: return "sync";
    case FaultOp::kRename: return "rename";
    case FaultOp::kUnlink: return "unlink";
    case FaultOp::kDirSync: return "dirsync";
  }
  return "?";
}

FaultInjection& FaultInjection::Instance() {
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

void FaultInjection::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_ = 0;
  fail_at_.reset();
  crash_on_fault_ = false;
  crashed_ = false;
  files_.clear();
  pending_dir_ops_.clear();
  staged_.reset();
  enabled_.store(true, std::memory_order_release);
}

void FaultInjection::Disable() {
  enabled_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  pending_dir_ops_.clear();
  staged_.reset();
  fail_at_.reset();
  crashed_ = false;
}

void FaultInjection::ArmFaultAt(std::uint64_t index, bool crash) {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_ = 0;
  fail_at_ = index;
  crash_on_fault_ = crash;
  crashed_ = false;
}

void FaultInjection::ClearSchedule() {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_ = 0;
  fail_at_.reset();
  crash_on_fault_ = false;
  crashed_ = false;
}

std::uint64_t FaultInjection::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

bool FaultInjection::crash_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

bool FaultInjection::ShouldFail(FaultOp op, const std::string& path) {
  (void)op;
  (void)path;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t index = op_count_++;
  if (crashed_) return true;
  if (fail_at_.has_value() && index == *fail_at_) {
    if (crash_on_fault_) crashed_ = true;
    return true;
  }
  return false;
}

void FaultInjection::OnOpen(const std::string& path, std::uint64_t size,
                            bool truncated) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || truncated) {
    // Pre-existing bytes (or an empty fresh file) are assumed durable:
    // they were written by a previous "process life".
    files_[path] = FileState{size, size};
  }
}

void FaultInjection::OnWrite(const std::string& path, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].size += bytes;
}

void FaultInjection::OnSync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& state = files_[path];
  state.synced_size = state.size;
}

void FaultInjection::PrepareRename(const std::string& from,
                                   const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  PendingDirOp op;
  op.is_rename = true;
  op.from = from;
  op.path = to;
  op.target_existed = ReadWholeFile(to, op.saved_content);
  staged_ = std::move(op);
}

void FaultInjection::CommitRename(const std::string& from,
                                  const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (staged_.has_value()) {
    pending_dir_ops_.push_back(std::move(*staged_));
    staged_.reset();
  }
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
}

void FaultInjection::PrepareUnlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  PendingDirOp op;
  op.is_rename = false;
  op.path = path;
  op.target_existed = ReadWholeFile(path, op.saved_content);
  staged_ = std::move(op);
}

void FaultInjection::CommitUnlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (staged_.has_value()) {
    pending_dir_ops_.push_back(std::move(*staged_));
    staged_.reset();
  }
  files_.erase(path);
}

void FaultInjection::OnDirSync(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_dir_ops_.erase(
      std::remove_if(pending_dir_ops_.begin(), pending_dir_ops_.end(),
                     [&](const PendingDirOp& op) {
                       return ParentOf(op.path) == dir &&
                              (!op.is_rename || ParentOf(op.from) == dir);
                     }),
      pending_dir_ops_.end());
}

void FaultInjection::SimulateCrash(const CrashOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options.undo_unsynced_dir_ops) {
    for (auto it = pending_dir_ops_.rbegin(); it != pending_dir_ops_.rend();
         ++it) {
      const PendingDirOp& op = *it;
      if (op.is_rename) {
        // The renamed content goes back to its old name; the clobbered
        // target (if any) is restored.
        std::string current;
        if (ReadWholeFile(op.path, current)) {
          WriteWholeFile(op.from, current);
          auto state = files_.find(op.path);
          if (state != files_.end()) {
            files_[op.from] = state->second;
            files_.erase(state);
          }
        }
        if (op.target_existed) {
          WriteWholeFile(op.path, op.saved_content);
          files_[op.path] =
              FileState{op.saved_content.size(), op.saved_content.size()};
        } else {
          std::remove(op.path.c_str());
        }
      } else if (op.target_existed) {
        WriteWholeFile(op.path, op.saved_content);
        files_[op.path] =
            FileState{op.saved_content.size(), op.saved_content.size()};
      }
    }
  }
  pending_dir_ops_.clear();

  for (auto& [path, state] : files_) {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) continue;
    const std::uint64_t durable =
        std::min<std::uint64_t>(
            static_cast<std::uint64_t>(st.st_size),
            state.synced_size + options.keep_unsynced_tail_bytes);
    if (static_cast<std::uint64_t>(st.st_size) > durable) {
      (void)::truncate(path.c_str(), static_cast<off_t>(durable));
    }
    state.size = durable;
    state.synced_size = std::min(state.synced_size, durable);
  }
}

}  // namespace rtsi::storage
