#include "storage/snapshot.h"

#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "index/compressed_postings.h"
#include "index/skip_header.h"
#include "storage/file_io.h"

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using core::RtsiIndex;
using index::CompressedTermPostings;
using index::Posting;
using index::StreamInfo;
using index::TermPostings;

void WriteConfig(SnapshotWriter& writer, const RtsiConfig& config) {
  writer.WriteU64(config.lsm.delta);
  writer.WriteDouble(config.lsm.rho);
  writer.WriteU32(config.lsm.compress ? 1 : 0);
  writer.WriteU64(config.lsm.num_l0_shards);
  writer.WriteDouble(config.weights.pop);
  writer.WriteDouble(config.weights.rel);
  writer.WriteDouble(config.weights.frsh);
  writer.WriteDouble(config.freshness_tau_seconds);
  writer.WriteU32(config.use_bound ? 1 : 0);
  writer.WriteU32(static_cast<std::uint32_t>(config.bound_mode));
  writer.WriteU32(static_cast<std::uint32_t>(config.default_k));
  // v5: the compaction policy and its tiering knob, so the restored tree
  // keeps folding runs the way the saved one did.
  writer.WriteU32(static_cast<std::uint32_t>(config.lsm.policy));
  writer.WriteU64(config.lsm.tier_runs);
}

bool ReadConfig(SnapshotReader& reader, RtsiConfig& config) {
  std::uint64_t delta = 0, shards = 0;
  std::uint32_t compress = 0, use_bound = 0, bound_mode = 0, k = 0;
  if (!reader.ReadU64(delta) || !reader.ReadDouble(config.lsm.rho) ||
      !reader.ReadU32(compress) || !reader.ReadU64(shards) ||
      !reader.ReadDouble(config.weights.pop) ||
      !reader.ReadDouble(config.weights.rel) ||
      !reader.ReadDouble(config.weights.frsh) ||
      !reader.ReadDouble(config.freshness_tau_seconds) ||
      !reader.ReadU32(use_bound) || !reader.ReadU32(bound_mode) ||
      !reader.ReadU32(k)) {
    return false;
  }
  config.lsm.delta = delta;
  config.lsm.compress = compress != 0;
  config.lsm.num_l0_shards = shards;
  config.use_bound = use_bound != 0;
  config.bound_mode = static_cast<core::BoundMode>(bound_mode);
  config.default_k = static_cast<int>(k);
  if (reader.version() >= 5) {
    std::uint32_t policy = 0;
    std::uint64_t tier_runs = 0;
    if (!reader.ReadU32(policy) || !reader.ReadU64(tier_runs)) return false;
    if (policy > static_cast<std::uint32_t>(lsm::MergePolicy::kTiered)) {
      return false;
    }
    config.lsm.policy = static_cast<lsm::MergePolicy>(policy);
    config.lsm.tier_runs = tier_runs;
  }
  // <= v4 files predate the policy field; their writers ran the geometric
  // cascade, which config defaults already select.
  return true;
}

}  // namespace

Status SaveIndexSnapshot(const RtsiIndex& index, const std::string& path,
                         std::uint64_t journal_epoch) {
  SnapshotWriter writer;
  Status status = writer.Open(path, kSnapshotVersion);
  if (!status.ok()) return status;

  WriteConfig(writer, index.config());
  writer.WriteU64(journal_epoch);

  // Document frequencies.
  {
    const auto& df = index.doc_freq();
    writer.WriteU64(df.num_documents());
    std::vector<std::pair<TermId, std::uint64_t>> entries;
    df.ForEach([&](TermId term, std::uint64_t count) {
      entries.emplace_back(term, count);
    });
    writer.WriteVarint(entries.size());
    for (const auto& [term, count] : entries) {
      writer.WriteVarint(term);
      writer.WriteVarint(count);
    }
  }

  // Stream-info table (including tombstones).
  {
    std::vector<std::pair<StreamId, StreamInfo>> entries;
    index.stream_table().ForEach(
        [&](StreamId stream, const StreamInfo& info) {
          entries.emplace_back(stream, info);
        });
    writer.WriteVarint(entries.size());
    for (const auto& [stream, info] : entries) {
      writer.WriteVarint(stream);
      writer.WriteVarint(info.pop_count);
      writer.WriteVarint(static_cast<std::uint64_t>(info.frsh));
      writer.WriteVarint(info.component_count);
      writer.WriteU32((info.live ? 1u : 0u) | (info.deleted ? 2u : 0u) |
                      (info.content_seen ? 4u : 0u) |
                      (info.finished ? 8u : 0u));
    }
  }

  // Live-term table.
  {
    std::vector<std::pair<StreamId, std::vector<std::pair<TermId, TermFreq>>>>
        entries;
    index.live_table().ForEachStream(
        [&](StreamId stream,
            const std::unordered_map<TermId, TermFreq>& terms) {
          std::vector<std::pair<TermId, TermFreq>> flat(terms.begin(),
                                                        terms.end());
          entries.emplace_back(stream, std::move(flat));
        });
    writer.WriteVarint(entries.size());
    for (const auto& [stream, terms] : entries) {
      writer.WriteVarint(stream);
      writer.WriteVarint(terms.size());
      for (const auto& [term, total] : terms) {
        writer.WriteVarint(term);
        writer.WriteVarint(total);
      }
    }
  }

  // Sealed components (always stored compressed).
  {
    const auto components = index.tree().SealedSnapshot();
    writer.WriteVarint(components.size());
    for (const auto& component : components) {
      writer.WriteU32(static_cast<std::uint32_t>(component->level()));
      // Live-freshness ceiling at save time: a valid ceiling for every
      // resident stream's freshness as of the snapshot. The restore path
      // re-registers residencies, so later inserts keep it tight.
      writer.WriteVarint(
          static_cast<std::uint64_t>(component->LiveFrshCeiling()));
      // v4: the immutable skip header, bit-exact. Every tree-owned
      // component carries one; the empty-blob fallback keeps the format
      // well-defined for components built outside the tree lifecycle.
      const index::SkipHeader* header = component->skip_header();
      writer.WriteBlob(header != nullptr ? header->Serialize()
                                         : std::vector<std::uint8_t>{});
      writer.WriteVarint(component->num_terms());
      component->ForEachTerm([&](TermId term, const TermPostings& postings) {
        writer.WriteVarint(term);
        const auto compressed =
            CompressedTermPostings::FromPostings(postings);
        writer.WriteBlob(compressed.blob());
      });
    }
  }

  // L0 postings (raw, arrival order).
  {
    std::vector<std::pair<TermId, std::vector<Posting>>> terms;
    index.tree().ForEachL0Term(
        [&](TermId term, const TermPostings& postings) {
          const auto entries = postings.entries();
          terms.emplace_back(term, std::vector<Posting>(entries.begin(),
                                                        entries.end()));
        });
    writer.WriteVarint(terms.size());
    for (const auto& [term, postings] : terms) {
      writer.WriteVarint(term);
      writer.WriteVarint(postings.size());
      for (const Posting& p : postings) {
        writer.WriteVarint(p.stream);
        std::uint32_t pop_bits;
        std::memcpy(&pop_bits, &p.pop, sizeof(pop_bits));
        writer.WriteU32(pop_bits);
        writer.WriteVarint(static_cast<std::uint64_t>(p.frsh));
        writer.WriteVarint(p.tf);
      }
    }
  }

  return writer.Finish();
}

Result<std::unique_ptr<RtsiIndex>> LoadIndexSnapshot(
    const std::string& path, std::uint64_t* journal_epoch) {
  if (journal_epoch != nullptr) *journal_epoch = 0;
  SnapshotReader reader;
  Status status = reader.Open(path, kMinSnapshotVersion, kSnapshotVersion);
  if (!status.ok()) return status;

  RtsiConfig config;
  if (!ReadConfig(reader, config)) {
    return Status::Internal("snapshot: bad config section");
  }
  if (reader.version() >= 3) {
    std::uint64_t epoch = 0;
    if (!reader.ReadU64(epoch)) {
      return Status::Internal("snapshot: bad journal epoch");
    }
    if (journal_epoch != nullptr) *journal_epoch = epoch;
  }
  auto index = std::make_unique<RtsiIndex>(config);

  // Document frequencies.
  {
    std::uint64_t num_documents = 0, count = 0;
    if (!reader.ReadU64(num_documents) || !reader.ReadVarint(count)) {
      return Status::Internal("snapshot: bad df header");
    }
    index->mutable_doc_freq().SetNumDocuments(num_documents);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t term = 0, df = 0;
      if (!reader.ReadVarint(term) || !reader.ReadVarint(df)) {
        return Status::Internal("snapshot: bad df entry");
      }
      index->mutable_doc_freq().RestoreEntry(static_cast<TermId>(term), df);
    }
  }

  // Stream-info table.
  {
    std::uint64_t count = 0;
    if (!reader.ReadVarint(count)) {
      return Status::Internal("snapshot: bad stream table header");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t stream = 0, pop = 0, frsh = 0, components = 0;
      std::uint32_t flags = 0;
      if (!reader.ReadVarint(stream) || !reader.ReadVarint(pop) ||
          !reader.ReadVarint(frsh) || !reader.ReadVarint(components) ||
          !reader.ReadU32(flags)) {
        return Status::Internal("snapshot: bad stream entry");
      }
      StreamInfo info;
      info.pop_count = pop;
      info.frsh = static_cast<Timestamp>(frsh);
      info.component_count = static_cast<std::uint32_t>(components);
      info.live = (flags & 1u) != 0;
      info.deleted = (flags & 2u) != 0;
      info.content_seen = (flags & 4u) != 0;
      info.finished = (flags & 8u) != 0;
      index->mutable_stream_table().RestoreEntry(stream, info);
    }
  }

  // Live-term table.
  {
    std::uint64_t num_streams = 0;
    if (!reader.ReadVarint(num_streams)) {
      return Status::Internal("snapshot: bad live table header");
    }
    for (std::uint64_t i = 0; i < num_streams; ++i) {
      std::uint64_t stream = 0, num_terms = 0;
      if (!reader.ReadVarint(stream) || !reader.ReadVarint(num_terms)) {
        return Status::Internal("snapshot: bad live table entry");
      }
      for (std::uint64_t t = 0; t < num_terms; ++t) {
        std::uint64_t term = 0, total = 0;
        if (!reader.ReadVarint(term) || !reader.ReadVarint(total)) {
          return Status::Internal("snapshot: bad live term entry");
        }
        index->mutable_live_table().Add(stream, static_cast<TermId>(term),
                                        static_cast<TermFreq>(total));
      }
    }
  }

  // Sealed components.
  {
    std::uint64_t num_components = 0;
    if (!reader.ReadVarint(num_components)) {
      return Status::Internal("snapshot: bad component header");
    }
    std::unordered_set<StreamId> resident;
    for (std::uint64_t c = 0; c < num_components; ++c) {
      std::uint32_t level = 0;
      std::uint64_t ceiling = 0, num_terms = 0;
      // v1 component entries carry no ceiling varint. Leaving `ceiling`
      // at 0 is still sound: the residency re-registration below folds
      // every resident stream's restored live freshness into the fresh
      // cell, which is exactly the coverage the ceiling must provide.
      if (!reader.ReadU32(level) ||
          (reader.version() >= 2 && !reader.ReadVarint(ceiling))) {
        return Status::Internal("snapshot: bad component entry");
      }
      // v4 carries the skip header bit-exact; <= v3 leaves the blob empty
      // and RestoreSealedComponent rebuilds it deterministically from the
      // decoded postings.
      std::vector<std::uint8_t> header_blob;
      if (reader.version() >= 4 && !reader.ReadBlob(header_blob)) {
        return Status::Internal("snapshot: bad skip-header blob");
      }
      if (!reader.ReadVarint(num_terms)) {
        return Status::Internal("snapshot: bad component entry");
      }
      auto component =
          std::make_shared<index::InvertedIndex>(static_cast<int>(level));
      if (!header_blob.empty()) {
        index::SkipHeader header;
        if (!index::SkipHeader::Deserialize(header_blob.data(),
                                            header_blob.size(), header)) {
          return Status::Internal("snapshot: corrupt skip header");
        }
        component->AdoptSkipHeader(std::move(header));
      }
      std::vector<std::uint8_t> blob;
      resident.clear();
      for (std::uint64_t t = 0; t < num_terms; ++t) {
        std::uint64_t term = 0;
        if (!reader.ReadVarint(term) || !reader.ReadBlob(blob)) {
          return Status::Internal("snapshot: bad component term");
        }
        TermPostings postings = CompressedTermPostings::DecodeBlob(blob);
        if (postings.empty() && !blob.empty()) {
          return Status::Internal("snapshot: corrupt posting blob");
        }
        for (const Posting& p : postings.entries()) {
          resident.insert(p.stream);
        }
        component->Put(static_cast<TermId>(term), std::move(postings));
      }
      if (config.lsm.compress) component->CompressAll();
      status = index->mutable_tree().RestoreSealedComponent(component);
      if (!status.ok()) return status;
      // RestoreSealedComponent gave the component its identity and ceiling
      // cell; fold in the persisted ceiling and re-register every resident
      // stream so future inserts keep bumping it (exactly the freeze-time
      // registration, reconstructed from the decoded postings).
      component->BumpCeiling(static_cast<Timestamp>(ceiling));
      for (const StreamId stream : resident) {
        index->mutable_stream_table().AddSealedResidency(
            stream, component->component_id(), component->ceiling_cell());
      }
    }
  }

  // L0 postings.
  {
    std::uint64_t num_terms = 0;
    if (!reader.ReadVarint(num_terms)) {
      return Status::Internal("snapshot: bad L0 header");
    }
    for (std::uint64_t t = 0; t < num_terms; ++t) {
      std::uint64_t term = 0, count = 0;
      if (!reader.ReadVarint(term) || !reader.ReadVarint(count)) {
        return Status::Internal("snapshot: bad L0 term");
      }
      for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t stream = 0, frsh = 0, tf = 0;
        std::uint32_t pop_bits = 0;
        if (!reader.ReadVarint(stream) || !reader.ReadU32(pop_bits) ||
            !reader.ReadVarint(frsh) || !reader.ReadVarint(tf)) {
          return Status::Internal("snapshot: bad L0 posting");
        }
        Posting posting;
        posting.stream = stream;
        std::memcpy(&posting.pop, &pop_bits, sizeof(pop_bits));
        posting.frsh = static_cast<Timestamp>(frsh);
        posting.tf = static_cast<TermFreq>(tf);
        // AddPosting repopulates the L0 stream-seen set as a side effect;
        // the first-in-epoch return is ignored because residency counts
        // were already restored with the stream table.
        index->mutable_tree().AddPosting(static_cast<TermId>(term), posting);
      }
    }
  }

  if (!reader.AtEnd()) {
    return Status::Internal("snapshot: trailing bytes");
  }
  return index;
}

}  // namespace rtsi::storage
