#include "storage/journal.h"

#include <dirent.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/latency_stats.h"
#include "storage/fs.h"
#include "storage/snapshot.h"

namespace rtsi::storage {
namespace {

// First line of a journal created by this version. Parsed as a comment
// by workload::Trace, so journals remain valid benchmark traces.
constexpr const char* kJournalHeaderPrefix = "# RTSI journal v2 epoch ";

std::string JournalHeaderLine(std::uint64_t epoch) {
  return kJournalHeaderPrefix + std::to_string(epoch) + "\n";
}

struct JournalHeader {
  bool present = false;
  std::uint64_t epoch = 0;
};

JournalHeader ReadJournalHeader(const std::string& path) {
  JournalHeader header;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return header;
  char line[128];
  if (std::fgets(line, sizeof(line), f) != nullptr &&
      std::strncmp(line, kJournalHeaderPrefix,
                   std::strlen(kJournalHeaderPrefix)) == 0) {
    header.present = true;
    header.epoch = std::strtoull(line + std::strlen(kJournalHeaderPrefix),
                                 nullptr, 10);
  }
  std::fclose(f);
  return header;
}

std::string RotatedJournalName(const std::string& journal_path,
                               std::uint64_t epoch) {
  return journal_path + "." + std::to_string(epoch);
}

/// Rotated journals next to `journal_path`, ascending by epoch.
std::vector<std::pair<std::uint64_t, std::string>> FindRotatedJournals(
    const std::string& journal_path) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  const std::string dir_path = fs::ParentDir(journal_path);
  const std::size_t slash = journal_path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? journal_path : journal_path.substr(slash + 1);
  DIR* dir = ::opendir(dir_path.c_str());
  if (dir == nullptr) return found;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= base.size() + 1 || name.compare(0, base.size(), base) != 0 ||
        name[base.size()] != '.') {
      continue;
    }
    const std::string suffix = name.substr(base.size() + 1);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::strtoull(suffix.c_str(), nullptr, 10),
                       dir_path + "/" + name);
  }
  ::closedir(dir);
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

Status JournalWriter::Open(const std::string& path,
                           const JournalOptions& options,
                           std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("already open");
  options_ = options;
  return OpenLocked(path, epoch);
}

Status JournalWriter::Open(const std::string& path, bool flush_each_record) {
  JournalOptions options;
  options.flush_each_record = flush_each_record;
  return Open(path, options, 0);
}

Status JournalWriter::OpenLocked(const std::string& path,
                                 std::uint64_t epoch) {
  const bool fresh = !fs::Exists(path) || fs::FileSize(path) == 0;
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return Status::Internal("cannot open journal: " + path);
  }
  fs::TrackOpen(path, /*truncated=*/false);
  path_ = path;
  epoch_ = epoch;
  records_ = 0;
  unsynced_records_ = 0;
  if (fresh) {
    const std::string header = JournalHeaderLine(epoch);
    if (!fs::Write(file_, header.data(), header.size(), path_)) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::Internal("cannot write journal header: " + path);
    }
    const Status synced = SyncLocked();
    if (!synced.ok()) {
      std::fclose(file_);
      file_ = nullptr;
      return synced;
    }
  }
  return Status::Ok();
}

Status JournalWriter::SyncLocked() {
  const Status status = fs::FlushAndSync(file_, path_);
  if (status.ok()) unsynced_records_ = 0;
  return status;
}

Status JournalWriter::Append(const workload::TraceOp& op) {
  std::string line = workload::Trace::FormatOpChecked(op);
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("journal closed");
  if (!fs::Write(file_, line.data(), line.size(), path_)) {
    return Status::Internal("journal append failed: " + path_);
  }
  ++unsynced_records_;
  if (options_.flush_each_record ||
      (options_.group_commit_records > 0 &&
       unsynced_records_ >= options_.group_commit_records)) {
    const Status status = SyncLocked();
    if (!status.ok()) {
      return Status::Internal("journal flush failed: " + status.message());
    }
  }
  ++records_;
  return Status::Ok();
}

Status JournalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("journal closed");
  return SyncLocked();
}

Status JournalWriter::Rotate(const std::string& rotated_path,
                             std::uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return Status::FailedPrecondition("journal never opened");
  if (file_ != nullptr) {
    // The rotated file must be fully durable before it changes name: a
    // replayer never tolerates a torn tail in a non-final journal.
    const Status synced = SyncLocked();
    if (!synced.ok()) return synced;  // writer stays usable
    std::fclose(file_);
    file_ = nullptr;
  }
  Status status = fs::Rename(path_, rotated_path);
  if (!status.ok()) {
    // The old file is still in place; reopen it so the writer survives.
    file_ = std::fopen(path_.c_str(), "a");
    return status;
  }
  status = OpenLocked(path_, new_epoch);
  if (!status.ok()) return status;
  return fs::SyncParentDir(path_);
}

Status JournalWriter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return Status::FailedPrecondition("journal never opened");
  const std::string old_path = path_ + ".old";
  if (file_ != nullptr) {
    std::fclose(file_);  // Content is being discarded; no sync needed.
    file_ = nullptr;
  }
  Status status = fs::Rename(path_, old_path);
  if (!status.ok()) {
    file_ = std::fopen(path_.c_str(), "a");
    return status;
  }
  records_ = 0;  // The active journal is empty from here on.
  status = OpenLocked(path_, epoch_);
  if (!status.ok()) return status;  // Closed but consistent; Open() retries.
  status = fs::SyncParentDir(path_);
  if (!status.ok()) return status;
  // Only now that the fresh journal is durable may the old one go away.
  (void)fs::Remove(old_path);
  return Status::Ok();
}

Status JournalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::Ok();
  const Status flushed = fs::Flush(file_, path_);
  const bool ok = std::fclose(file_) == 0 && flushed.ok();
  file_ = nullptr;
  return ok ? Status::Ok() : Status::Internal("journal close failed");
}

JournalInspection InspectJournal(const std::string& path) {
  JournalInspection result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.error = "cannot open " + path;
    return result;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data;
  data.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read =
      data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) {
    result.error = "short read: " + path;
    return result;
  }
  result.readable = true;

  const JournalHeader header = ReadJournalHeader(path);
  result.has_epoch_header = header.present;
  result.epoch = header.epoch;

  std::size_t offset = 0;
  while (offset < data.size()) {
    std::size_t end = data.find('\n', offset);
    const bool has_newline = end != std::string::npos;
    if (!has_newline) end = data.size();
    const std::string line = data.substr(offset, end - offset);
    const bool is_last = (has_newline ? end + 1 : end) >= data.size();

    workload::TraceOp op;
    const auto parse = workload::Trace::ParseLineChecked(line, op);
    const bool bad =
        parse == workload::Trace::LineParse::kMalformed ||
        parse == workload::Trace::LineParse::kBadChecksum;
    if (parse == workload::Trace::LineParse::kOk) {
      const bool torn_ok_line = is_last && !has_newline;
      if (torn_ok_line) {
        result.torn_tail = true;
        result.torn_tail_offset = offset;
        result.torn_tail_reason = "record missing trailing newline";
      } else {
        ++result.records;
        if (workload::Trace::HasChecksumSuffix(line)) {
          ++result.checksummed_records;
        }
      }
    } else if (bad) {
      if (is_last) {
        result.torn_tail = true;
        result.torn_tail_offset = offset;
        result.torn_tail_reason =
            parse == workload::Trace::LineParse::kBadChecksum
                ? "checksum mismatch"
                : "malformed record";
      } else if (!result.corrupt) {
        result.corrupt = true;
        result.first_corrupt_offset = offset;
        result.error =
            (parse == workload::Trace::LineParse::kBadChecksum
                 ? std::string("checksum mismatch at byte offset ")
                 : std::string("malformed record at byte offset ")) +
            std::to_string(offset);
      }
    }
    offset = has_newline ? end + 1 : end;
  }
  return result;
}

DurableIndex::DurableIndex(std::unique_ptr<core::RtsiIndex> index,
                           std::string snapshot_path,
                           std::string journal_path)
    : index_(std::move(index)),
      snapshot_path_(std::move(snapshot_path)),
      journal_path_(std::move(journal_path)) {}

Result<std::unique_ptr<DurableIndex>> DurableIndex::Open(
    const core::RtsiConfig& config, const std::string& snapshot_path,
    const std::string& journal_path, bool flush_each_record,
    RecoveryStats* stats) {
  JournalOptions options;
  options.flush_each_record = flush_each_record;
  return Open(config, snapshot_path, journal_path, options, stats);
}

Result<std::unique_ptr<DurableIndex>> DurableIndex::Open(
    const core::RtsiConfig& config, const std::string& snapshot_path,
    const std::string& journal_path, const JournalOptions& options,
    RecoveryStats* stats) {
  RecoveryStats local_stats;
  RecoveryStats& rs = stats != nullptr ? *stats : local_stats;
  rs = RecoveryStats{};
  Stopwatch watch;

  // A leftover snapshot temporary means a crash interrupted a checkpoint
  // before its rename; it is worthless.
  if (fs::Exists(snapshot_path + ".tmp")) {
    (void)fs::Remove(snapshot_path + ".tmp");
  }

  // 1. Base state: the snapshot, if one exists.
  std::unique_ptr<core::RtsiIndex> index;
  std::uint64_t snap_epoch = 0;
  if (fs::Exists(snapshot_path)) {
    auto loaded = LoadIndexSnapshot(snapshot_path, &snap_epoch);
    if (!loaded.ok()) return loaded.status();
    index = std::move(loaded).value();
    rs.snapshot_loaded = true;
    rs.snapshot_epoch = snap_epoch;
  } else {
    index = std::make_unique<core::RtsiIndex>(config);
  }

  // 2. Replay journals in epoch order. Files with an epoch below the
  // snapshot's are fully covered by it (the crash hit a checkpoint after
  // the snapshot rename but before cleanup) and must NOT be replayed:
  // that would apply their operations twice.
  auto replay_file = [&](const std::string& path) -> Status {
    workload::TraceLoadOptions load_options;
    load_options.tolerate_torn_tail = true;
    workload::TraceLoadInfo info;
    auto trace = workload::Trace::LoadFromFile(path, load_options, &info);
    if (!trace.ok()) return trace.status();
    workload::ReplayTrace(trace.value(), *index);
    ++rs.journals_replayed;
    rs.ops_replayed += info.ops;
    if (info.torn_tail_dropped) {
      ++rs.torn_tails_dropped;
      std::fprintf(stderr,
                   "rtsi journal: dropped torn tail of %s at byte %llu "
                   "(%s); truncating\n",
                   path.c_str(),
                   static_cast<unsigned long long>(info.torn_tail_offset),
                   info.torn_tail_reason.c_str());
      // Future appends must not land after torn garbage — that would
      // turn a benign tail into mid-file corruption on the next replay.
      const Status truncated = fs::Truncate(path, info.torn_tail_offset);
      if (!truncated.ok()) return truncated;
    }
    return Status::Ok();
  };

  std::uint64_t max_rotated_epoch = 0;
  bool any_rotated = false;
  for (const auto& [name_epoch, path] : FindRotatedJournals(journal_path)) {
    const JournalHeader header = ReadJournalHeader(path);
    const std::uint64_t epoch = header.present ? header.epoch : name_epoch;
    if (epoch < snap_epoch) {
      // Covered by the snapshot; finish the interrupted cleanup.
      ++rs.journals_skipped;
      (void)fs::Remove(path);
      continue;
    }
    const Status replayed = replay_file(path);
    if (!replayed.ok()) return replayed;
    any_rotated = true;
    max_rotated_epoch = std::max(max_rotated_epoch, epoch);
  }

  std::uint64_t active_epoch = snap_epoch;
  if (any_rotated) active_epoch = std::max(snap_epoch, max_rotated_epoch + 1);
  if (fs::Exists(journal_path)) {
    const JournalHeader header = ReadJournalHeader(journal_path);
    // Legacy journals (no epoch header) predate snapshot epochs and are
    // always a tail on top of the snapshot.
    const std::uint64_t epoch = header.present ? header.epoch : snap_epoch;
    if (header.present && epoch < snap_epoch) {
      // Covered by the snapshot. Appending to it would hide new records
      // behind the skip rule, so retire it and start fresh.
      ++rs.journals_skipped;
      (void)fs::Remove(journal_path);
    } else {
      const Status replayed = replay_file(journal_path);
      if (!replayed.ok()) return replayed;
      active_epoch = std::max(active_epoch, epoch);
    }
  }
  rs.replay_seconds = watch.ElapsedMicros() / 1e6;

  auto durable = std::unique_ptr<DurableIndex>(new DurableIndex(
      std::move(index), snapshot_path, journal_path));
  const Status status =
      durable->journal_.Open(journal_path, options, active_epoch);
  if (!status.ok()) return status;
  return durable;
}

void DurableIndex::EnterDegraded(const Status& status) {
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    last_error_ = status;
  }
  degraded_.store(true, std::memory_order_release);
  std::fprintf(stderr,
               "rtsi journal: entering read-only degraded mode: %s\n",
               status.ToString().c_str());
}

Status DurableIndex::last_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return last_error_;
}

void DurableIndex::Mutate(const workload::TraceOp& op) {
  if (degraded()) return;  // Fail-stop: reject, never diverge.
  const Status status = journal_.Append(op);
  if (!status.ok()) {
    EnterDegraded(status);
    return;
  }
  switch (op.kind) {
    case workload::TraceOp::Kind::kInsert:
      index_->InsertWindow(op.stream, op.now, op.terms, op.live);
      break;
    case workload::TraceOp::Kind::kFinish:
      index_->FinishStream(op.stream);
      break;
    case workload::TraceOp::Kind::kDelete:
      index_->DeleteStream(op.stream);
      break;
    case workload::TraceOp::Kind::kUpdate:
      index_->UpdatePopularity(op.stream, op.delta);
      break;
    case workload::TraceOp::Kind::kQuery:
      break;  // Queries are never journaled.
  }
}

void DurableIndex::InsertWindow(StreamId stream, Timestamp now,
                                const std::vector<core::TermCount>& terms,
                                bool live) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kInsert;
  op.stream = stream;
  op.now = now;
  op.live = live;
  op.terms = terms;
  Mutate(op);
}

void DurableIndex::FinishStream(StreamId stream) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kFinish;
  op.stream = stream;
  Mutate(op);
}

void DurableIndex::DeleteStream(StreamId stream) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kDelete;
  op.stream = stream;
  Mutate(op);
}

void DurableIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kUpdate;
  op.stream = stream;
  op.delta = delta;
  Mutate(op);
}

std::vector<core::ScoredStream> DurableIndex::Query(
    const std::vector<TermId>& terms, int k, Timestamp now,
    core::QueryStats* stats) {
  return index_->Query(terms, k, now, stats);
}

std::size_t DurableIndex::MemoryBytes() const {
  return index_->MemoryBytes();
}

Status DurableIndex::Flush() {
  const Status status = journal_.Sync();
  if (!status.ok() && !degraded()) EnterDegraded(status);
  return status;
}

Status DurableIndex::Checkpoint() {
  index_->WaitForMerges();

  // 1. Rotate: the full history moves aside under an epoch name, a fresh
  // journal (next epoch) opens at the active path. A crash from here on
  // leaves the old snapshot plus both journal files — complete history.
  const std::uint64_t old_epoch = journal_.epoch();
  const std::uint64_t new_epoch = old_epoch + 1;
  Status status =
      journal_.Rotate(RotatedJournalName(journal_path_, old_epoch), new_epoch);
  if (!status.ok()) {
    // Past the rename the writer is closed: appends can no longer reach
    // disk, so the index must fail stop.
    if (!journal_.is_open()) EnterDegraded(status);
    return status;
  }

  // 2. Snapshot: written to a temporary, fsync'd, renamed, dir-fsync'd
  // (SnapshotWriter::Finish). After the rename is durable the snapshot
  // at `new_epoch` covers every journal with an older epoch.
  status = SaveIndexSnapshot(*index_, snapshot_path_, new_epoch);
  if (!status.ok()) return status;  // Rotated journal keeps history safe.

  // 3. Unlink covered journals. Failure here is harmless: recovery skips
  // (and re-deletes) covered epochs.
  for (const auto& [epoch, path] : FindRotatedJournals(journal_path_)) {
    const JournalHeader header = ReadJournalHeader(path);
    const std::uint64_t file_epoch = header.present ? header.epoch : epoch;
    if (file_epoch < new_epoch) (void)fs::Remove(path);
  }
  (void)fs::SyncParentDir(journal_path_);

  // The journal is fresh and healthy; a previous fail-stop no longer
  // reflects the durable state.
  if (degraded()) {
    std::lock_guard<std::mutex> lock(error_mu_);
    last_error_ = Status::Ok();
    degraded_.store(false, std::memory_order_release);
  }
  return Status::Ok();
}

}  // namespace rtsi::storage
