#include "storage/journal.h"

#include <sys/stat.h>

#include <utility>

#include "storage/snapshot.h"

namespace rtsi::storage {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status JournalWriter::Open(const std::string& path, bool flush_each_record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) return Status::FailedPrecondition("already open");
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return Status::Internal("cannot open journal: " + path);
  }
  path_ = path;
  flush_each_record_ = flush_each_record;
  return Status::Ok();
}

Status JournalWriter::Append(const workload::TraceOp& op) {
  const std::string line = workload::Trace::FormatOp(op);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("journal closed");
  if (std::fputs(line.c_str(), file_) < 0 ||
      std::fputc('\n', file_) == EOF) {
    return Status::Internal("journal append failed");
  }
  if (flush_each_record_ && std::fflush(file_) != 0) {
    return Status::Internal("journal flush failed");
  }
  ++records_;
  return Status::Ok();
}

Status JournalWriter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::FailedPrecondition("journal closed");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "w");  // Truncate.
  if (file_ == nullptr) {
    return Status::Internal("cannot truncate journal: " + path_);
  }
  records_ = 0;
  return Status::Ok();
}

Status JournalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::Ok();
  const bool ok = std::fclose(file_) == 0;
  file_ = nullptr;
  return ok ? Status::Ok() : Status::Internal("journal close failed");
}

DurableIndex::DurableIndex(std::unique_ptr<core::RtsiIndex> index,
                           std::string snapshot_path)
    : index_(std::move(index)), snapshot_path_(std::move(snapshot_path)) {}

Result<std::unique_ptr<DurableIndex>> DurableIndex::Open(
    const core::RtsiConfig& config, const std::string& snapshot_path,
    const std::string& journal_path, bool flush_each_record) {
  // 1. Base state: the snapshot, if one exists.
  std::unique_ptr<core::RtsiIndex> index;
  if (FileExists(snapshot_path)) {
    auto loaded = LoadIndexSnapshot(snapshot_path);
    if (!loaded.ok()) return loaded.status();
    index = std::move(loaded).value();
  } else {
    index = std::make_unique<core::RtsiIndex>(config);
  }

  // 2. Replay the journal tail, if any.
  if (FileExists(journal_path)) {
    auto trace = workload::Trace::LoadFromFile(journal_path);
    if (!trace.ok()) return trace.status();
    workload::ReplayTrace(trace.value(), *index);
  }

  auto durable = std::unique_ptr<DurableIndex>(
      new DurableIndex(std::move(index), snapshot_path));
  const Status status =
      durable->journal_.Open(journal_path, flush_each_record);
  if (!status.ok()) return status;
  return durable;
}

void DurableIndex::InsertWindow(StreamId stream, Timestamp now,
                                const std::vector<core::TermCount>& terms,
                                bool live) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kInsert;
  op.stream = stream;
  op.now = now;
  op.live = live;
  op.terms = terms;
  journal_.Append(op);
  index_->InsertWindow(stream, now, terms, live);
}

void DurableIndex::FinishStream(StreamId stream) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kFinish;
  op.stream = stream;
  journal_.Append(op);
  index_->FinishStream(stream);
}

void DurableIndex::DeleteStream(StreamId stream) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kDelete;
  op.stream = stream;
  journal_.Append(op);
  index_->DeleteStream(stream);
}

void DurableIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kUpdate;
  op.stream = stream;
  op.delta = delta;
  journal_.Append(op);
  index_->UpdatePopularity(stream, delta);
}

std::vector<core::ScoredStream> DurableIndex::Query(
    const std::vector<TermId>& terms, int k, Timestamp now,
    core::QueryStats* stats) {
  return index_->Query(terms, k, now, stats);
}

std::size_t DurableIndex::MemoryBytes() const {
  return index_->MemoryBytes();
}

Status DurableIndex::Checkpoint() {
  index_->WaitForMerges();
  Status status = SaveIndexSnapshot(*index_, snapshot_path_);
  if (!status.ok()) return status;
  return journal_.Reset();
}

}  // namespace rtsi::storage
