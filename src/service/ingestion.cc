#include "service/ingestion.h"

#include <unordered_map>
#include <utility>

namespace rtsi::service {
namespace {

audio::MfccConfig DefaultMfccConfig() {
  audio::MfccConfig config;
  return config;
}

audio::SynthesizerConfig DefaultSynthConfig() {
  audio::SynthesizerConfig config;
  return config;
}

}  // namespace

std::vector<core::TermCount> CountTerms(const std::vector<TermId>& ids) {
  std::unordered_map<TermId, TermFreq> counts;
  for (const TermId id : ids) ++counts[id];
  std::vector<core::TermCount> out;
  out.reserve(counts.size());
  for (const auto& [term, tf] : counts) out.push_back({term, tf});
  return out;
}

IngestionPipeline::IngestionPipeline(const IngestionConfig& config,
                                     text::TermDictionary* text_dict,
                                     text::TermDictionary* sound_dict)
    : config_(config),
      text_dict_(text_dict),
      sound_dict_(sound_dict),
      mfcc_(DefaultMfccConfig()),
      synthesizer_(DefaultSynthConfig()) {
  model_ = std::make_unique<asr::AcousticModel>(mfcc_);
  asr::DecoderConfig decoder_config;
  decoder_ = std::make_unique<asr::LatticeDecoder>(&mfcc_, model_.get(),
                                                   decoder_config);
  // Substitutions draw a random word from the already-interned text
  // vocabulary (a plausible confusion set).
  transcriber_ = std::make_unique<asr::Transcriber>(
      config.transcriber, [this](Rng& rng) -> std::string {
        const std::size_t n = text_dict_->size();
        if (n == 0) return "uh";
        return std::string(
            text_dict_->TermString(static_cast<TermId>(rng.NextUint64(n))));
      });
}

asr::PhoneticLattice IngestionPipeline::BuildLattice(
    const std::vector<std::string>& words, Rng& rng) const {
  if (config_.acoustic_path == AcousticPath::kFull) {
    // Words -> phones -> waveform -> MFCC -> lattice.
    std::vector<audio::PhoneSpec> specs;
    for (const std::string& word : words) {
      for (const asr::PhonemeId phone : lexicon_.Pronounce(word)) {
        specs.push_back(asr::PhonemeSpec(phone));
      }
    }
    const audio::PcmBuffer pcm = synthesizer_.Render(specs, rng);
    return decoder_->Decode(pcm);
  }

  // Direct path: phones become best hypotheses outright.
  asr::PhoneticLattice lattice;
  double t = 0.0;
  for (const std::string& word : words) {
    for (const asr::PhonemeId phone :
         const_cast<asr::Lexicon&>(lexicon_).Pronounce(word)) {
      asr::LatticeSegment segment;
      segment.start_seconds = t;
      segment.duration_seconds = asr::PhonemeSpec(phone).duration_seconds;
      t += segment.duration_seconds;
      segment.hypotheses.push_back({phone, 0.9});
      // A weak runner-up keeps the alternative-unit machinery exercised.
      const auto alt = static_cast<asr::PhonemeId>(
          rng.NextUint64(asr::PhonemeCount()));
      if (alt != phone) segment.hypotheses.push_back({alt, 0.1});
      lattice.AddSegment(std::move(segment));
    }
  }
  return lattice;
}

WindowArtifacts IngestionPipeline::ProcessWindow(
    const std::vector<std::string>& words, Rng& rng) {
  WindowArtifacts artifacts;

  // Text side: error model -> tokenize -> stop words -> intern.
  artifacts.transcript = transcriber_->Transcribe(words, rng);
  std::vector<TermId> text_ids;
  for (const std::string& word : artifacts.transcript) {
    for (const std::string& token : tokenizer_.Tokenize(word)) {
      if (stopwords_.IsStopword(token)) continue;
      if (config_.stem_text) {
        text_ids.push_back(text_dict_->Intern(stemmer_.Stem(token)));
      } else {
        text_ids.push_back(text_dict_->Intern(token));
      }
    }
  }
  artifacts.text_terms = CountTerms(text_ids);

  // Sound side: lattice -> units -> intern.
  const asr::PhoneticLattice lattice = BuildLattice(words, rng);
  std::vector<TermId> sound_ids;
  for (const std::string& unit : lattice.ExtractUnits(
           config_.lattice_ngram, config_.lattice_alt_threshold)) {
    sound_ids.push_back(sound_dict_->Intern(unit));
  }
  artifacts.sound_terms = CountTerms(sound_ids);
  return artifacts;
}

}  // namespace rtsi::service
