#include "service/service_snapshot.h"

#include <utility>
#include <vector>

#include "storage/file_io.h"
#include "storage/snapshot.h"

namespace rtsi::service {
namespace {

constexpr std::uint32_t kDictFormatVersion = 1;

Status SaveDictionary(storage::SnapshotWriter& writer,
                      text::TermDictionary& dict) {
  writer.WriteU64(dict.num_documents());
  writer.WriteVarint(dict.size());
  dict.ForEachInIdOrder(
      [&](TermId id, std::string_view term, std::uint64_t df) {
        (void)id;  // Ids are dense and written in order.
        writer.WriteString(std::string(term));
        writer.WriteVarint(df);
      });
  return Status::Ok();
}

Status LoadDictionary(storage::SnapshotReader& reader,
                      text::TermDictionary& dict) {
  if (dict.size() != 0) {
    return Status::FailedPrecondition(
        "dictionary must be empty before restore");
  }
  std::uint64_t num_documents = 0, count = 0;
  if (!reader.ReadU64(num_documents) || !reader.ReadVarint(count)) {
    return Status::Internal("dict snapshot: bad header");
  }
  dict.SetNumDocuments(num_documents);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string term;
    std::uint64_t df = 0;
    if (!reader.ReadString(term) || !reader.ReadVarint(df)) {
      return Status::Internal("dict snapshot: bad entry");
    }
    const TermId id = dict.Intern(term);
    if (id != static_cast<TermId>(i)) {
      return Status::Internal("dict snapshot: id order violated");
    }
    dict.RestoreDocumentFrequency(id, df);
  }
  return Status::Ok();
}

}  // namespace

Status SaveServiceSnapshot(SearchService& service,
                           const std::string& path_prefix) {
  if (service.num_shards() != 1) {
    return Status::FailedPrecondition(
        "service snapshots are single-shard; sharded deployments persist "
        "per shard (shard::IndexShardSet::Open + Checkpoint)");
  }
  // Both per-modality index files use the storage snapshot format, which
  // (since v2) persists each sealed component's live-freshness ceiling and
  // every stream's finished flag — a reloaded service prunes with the same
  // tight per-component bounds as the one that saved it.
  //
  // Each file is written atomically (tmp + fsync + rename + dir fsync in
  // SnapshotWriter), so a crash leaves every file either old or new,
  // never torn. The dicts file is written last and read first: a save
  // interrupted before it completes leaves the previous dicts in place,
  // and index files are only ever newer than the dicts they accompany —
  // term ids are append-only, so ids referenced by the older dicts
  // resolve identically against a newer index file's vocabulary.
  Status status =
      storage::SaveIndexSnapshot(service.text_index(), path_prefix + ".text");
  if (!status.ok()) return status;
  status = storage::SaveIndexSnapshot(service.sound_index(),
                                      path_prefix + ".sound");
  if (!status.ok()) return status;

  storage::SnapshotWriter writer;
  status = writer.Open(path_prefix + ".dicts", kDictFormatVersion);
  if (!status.ok()) return status;
  status = SaveDictionary(writer, service.text_dictionary());
  if (!status.ok()) return status;
  status = SaveDictionary(writer, service.sound_dictionary());
  if (!status.ok()) return status;
  return writer.Finish();
}

Status LoadServiceSnapshot(SearchService& service,
                           const std::string& path_prefix) {
  if (service.num_shards() != 1) {
    return Status::FailedPrecondition(
        "service snapshots are single-shard; sharded deployments recover "
        "per shard (shard::IndexShardSet::Open)");
  }
  storage::SnapshotReader reader;
  Status status = reader.Open(path_prefix + ".dicts", kDictFormatVersion);
  if (!status.ok()) return status;
  status = LoadDictionary(reader, service.text_dictionary());
  if (!status.ok()) return status;
  status = LoadDictionary(reader, service.sound_dictionary());
  if (!status.ok()) return status;

  auto text = storage::LoadIndexSnapshot(path_prefix + ".text");
  if (!text.ok()) return text.status();
  auto sound = storage::LoadIndexSnapshot(path_prefix + ".sound");
  if (!sound.ok()) return sound.status();
  // Publishing the restored pair is one atomic swap: queries in flight
  // finish against the pair they pinned; nothing blocks on them.
  service.ReplaceIndices(std::move(text).value(), std::move(sound).value());
  return Status::Ok();
}

}  // namespace rtsi::service
