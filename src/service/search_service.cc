#include "service/search_service.h"

#include <algorithm>
#include <unordered_map>

#include "asr/phoneme.h"
#include "audio/synthesizer.h"

namespace rtsi::service {

SearchService::SearchService(const SearchServiceConfig& config, Clock* clock)
    : config_(config), clock_(clock), rng_(config.seed) {
  pipeline_ = std::make_unique<IngestionPipeline>(config.ingestion,
                                                  &text_dict_, &sound_dict_);
  query_processor_ = std::make_unique<QueryProcessor>(
      pipeline_.get(), &text_dict_, &sound_dict_,
      config.ingestion.lattice_ngram,
      config.ingestion.lattice_alt_threshold, config.ingestion.stem_text);
  text_index_ = std::make_unique<core::RtsiIndex>(config.index);
  sound_index_ = std::make_unique<core::RtsiIndex>(config.index);
}

void SearchService::IngestWindow(StreamId stream,
                                 const std::vector<std::string>& words,
                                 bool live) {
  const WindowArtifacts artifacts = pipeline_->ProcessWindow(words, rng_);
  const Timestamp now = clock_->Now();
  text_index_->InsertWindow(stream, now, artifacts.text_terms, live);
  sound_index_->InsertWindow(stream, now, artifacts.sound_terms, live);
}

void SearchService::FinishStream(StreamId stream) {
  text_index_->FinishStream(stream);
  sound_index_->FinishStream(stream);
}

void SearchService::DeleteStream(StreamId stream) {
  text_index_->DeleteStream(stream);
  sound_index_->DeleteStream(stream);
}

void SearchService::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  text_index_->UpdatePopularity(stream, delta);
  sound_index_->UpdatePopularity(stream, delta);
}

std::vector<SearchResult> SearchService::Fuse(
    const std::vector<core::ScoredStream>& text_results,
    const std::vector<core::ScoredStream>& sound_results, int k) const {
  std::unordered_map<StreamId, SearchResult> fused;
  for (const core::ScoredStream& r : text_results) {
    SearchResult& result = fused[r.stream];
    result.stream = r.stream;
    result.text_score = r.score;
  }
  for (const core::ScoredStream& r : sound_results) {
    SearchResult& result = fused[r.stream];
    result.stream = r.stream;
    result.sound_score = r.score;
  }
  std::vector<SearchResult> out;
  out.reserve(fused.size());
  const double wt = config_.text_weight;
  for (auto& [stream, result] : fused) {
    result.score = wt * result.text_score + (1.0 - wt) * result.sound_score;
    out.push_back(result);
  }
  std::sort(out.begin(), out.end(),
            [](const SearchResult& a, const SearchResult& b) {
              return a.score > b.score;
            });
  if (out.size() > static_cast<std::size_t>(k)) out.resize(k);
  return out;
}

std::vector<SearchResult> SearchService::SearchKeywords(
    const std::string& query, int k) {
  if (k <= 0) k = config_.default_k;
  const ProcessedQuery processed =
      query_processor_->ProcessKeywords(query, rng_);
  const Timestamp now = clock_->Now();
  // Over-fetch per modality so fusion has material to rerank.
  const int fetch = 2 * k;
  const auto text_results =
      text_index_->Query(processed.text_terms, fetch, now);
  const auto sound_results =
      sound_index_->Query(processed.sound_terms, fetch, now);
  return Fuse(text_results, sound_results, k);
}

std::vector<SearchResult> SearchService::SearchVoice(
    const audio::PcmBuffer& pcm, int k) {
  if (k <= 0) k = config_.default_k;
  const ProcessedQuery processed = query_processor_->ProcessVoice(pcm, rng_);
  const Timestamp now = clock_->Now();
  const int fetch = 2 * k;
  const auto text_results =
      text_index_->Query(processed.text_terms, fetch, now);
  const auto sound_results =
      sound_index_->Query(processed.sound_terms, fetch, now);
  return Fuse(text_results, sound_results, k);
}

audio::PcmBuffer SearchService::SynthesizeQuery(
    const std::vector<std::string>& words) {
  std::vector<audio::PhoneSpec> specs;
  for (const std::string& word : words) {
    for (const asr::PhonemeId phone : pipeline_->lexicon().Pronounce(word)) {
      specs.push_back(asr::PhonemeSpec(phone));
    }
  }
  audio::SynthesizerConfig synth_config;
  const audio::Synthesizer synth(synth_config);
  return synth.Render(specs, rng_);
}

}  // namespace rtsi::service
