#include "service/search_service.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "asr/phoneme.h"
#include "audio/synthesizer.h"

namespace rtsi::service {
namespace {

shard::ShardSetConfig ShardConfig(const SearchServiceConfig& config) {
  shard::ShardSetConfig shard_config;
  shard_config.index = config.index;
  shard_config.num_shards = std::max(1, config.shards);
  shard_config.scatter_threads = config.scatter_threads;
  shard_config.shard_policies = config.shard_merge_policies;
  return shard_config;
}

}  // namespace

SearchService::SearchService(const SearchServiceConfig& config, Clock* clock)
    : config_(config), clock_(clock), rng_(config.seed) {
  pipeline_ = std::make_unique<IngestionPipeline>(config.ingestion,
                                                  &text_dict_, &sound_dict_);
  query_processor_ = std::make_unique<QueryProcessor>(
      pipeline_.get(), &text_dict_, &sound_dict_,
      config.ingestion.lattice_ngram,
      config.ingestion.lattice_alt_threshold, config.ingestion.stem_text);
  auto initial = std::make_shared<IndexPair>();
  initial->text = std::make_shared<shard::IndexShardSet>(ShardConfig(config));
  initial->sound = std::make_shared<shard::IndexShardSet>(ShardConfig(config));
  indices_.Store(std::move(initial));
  if (config.index.query_threads > 0) {
    // Two threads: enough to overlap the offloaded modality of two
    // concurrent searches. Each RtsiIndex brings its own executor pool,
    // so a modality task never blocks on this pool's own workers.
    modality_pool_ = std::make_unique<ThreadPool>(2);
  }
}

void SearchService::ReplaceIndices(std::unique_ptr<core::RtsiIndex> text,
                                   std::unique_ptr<core::RtsiIndex> sound) {
  // Adopt each restored index as a single-shard set; the adopt path
  // rebuilds the shared scoring aggregate from the restored tables.
  auto wrap = [this](std::unique_ptr<core::RtsiIndex> index) {
    shard::ShardSetConfig shard_config = ShardConfig(config_);
    shard_config.num_shards = 1;
    std::vector<std::unique_ptr<core::RtsiIndex>> shards;
    shards.push_back(std::move(index));
    return std::make_shared<shard::IndexShardSet>(shard_config,
                                                  std::move(shards));
  };
  auto next = std::make_shared<IndexPair>();
  next->text = wrap(std::move(text));
  next->sound = wrap(std::move(sound));
  restores_in_flight_.fetch_add(1, std::memory_order_release);
  indices_.Store(std::move(next));
  restores_in_flight_.fetch_sub(1, std::memory_order_release);
}

Status SearchService::IngestWindow(StreamId stream,
                                   const std::vector<std::string>& words,
                                   bool live) {
  const auto indices = PinIndices();
  // Validate against both modalities before touching either, so a
  // rejected window leaves the pair consistent. The check precedes the
  // ASR simulation too: a rejected window must not advance the seeded
  // RNG, or batched/unbatched runs would diverge after a rejection.
  Status status = indices->text->CheckInsert(stream);
  if (status.ok()) status = indices->sound->CheckInsert(stream);
  if (!status.ok()) return status;
  WindowArtifacts artifacts;
  {
    std::lock_guard<std::mutex> rng_lock(rng_mu_);
    artifacts = pipeline_->ProcessWindow(words, rng_);
  }
  const Timestamp now = clock_->Now();
  indices->text->InsertWindow(stream, now, artifacts.text_terms, live);
  indices->sound->InsertWindow(stream, now, artifacts.sound_terms, live);
  return Status::Ok();
}

Status SearchService::IngestBatch(const std::vector<IngestOp>& ops) {
  const auto indices = PinIndices();
  // All-or-nothing: validate every op's stream id (both modalities)
  // before any window of the batch is applied or any RNG draw happens.
  for (const IngestOp& op : ops) {
    Status status = indices->text->CheckInsert(op.stream);
    if (status.ok()) status = indices->sound->CheckInsert(op.stream);
    if (!status.ok()) return status;
  }
  std::vector<WindowArtifacts> artifacts(ops.size());
  {
    // One RNG acquisition for the whole batch: the draw sequence matches
    // the same ops issued individually, keeping seeded runs comparable
    // between the batched and unbatched front-ends.
    std::lock_guard<std::mutex> rng_lock(rng_mu_);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      artifacts[i] = pipeline_->ProcessWindow(ops[i].words, rng_);
    }
  }
  const Timestamp now = clock_->Now();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    indices->text->InsertWindow(ops[i].stream, now, artifacts[i].text_terms,
                                ops[i].live);
    indices->sound->InsertWindow(ops[i].stream, now, artifacts[i].sound_terms,
                                 ops[i].live);
  }
  return Status::Ok();
}

void SearchService::FinishStream(StreamId stream) {
  const auto indices = PinIndices();
  indices->text->FinishStream(stream);
  indices->sound->FinishStream(stream);
}

void SearchService::DeleteStream(StreamId stream) {
  const auto indices = PinIndices();
  indices->text->DeleteStream(stream);
  indices->sound->DeleteStream(stream);
}

void SearchService::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  const auto indices = PinIndices();
  indices->text->UpdatePopularity(stream, delta);
  indices->sound->UpdatePopularity(stream, delta);
}

std::vector<SearchResult> SearchService::Fuse(
    const std::vector<core::ScoredStream>& text_results,
    const std::vector<core::ScoredStream>& sound_results, int k) const {
  std::unordered_map<StreamId, SearchResult> fused;
  for (const core::ScoredStream& r : text_results) {
    SearchResult& result = fused[r.stream];
    result.stream = r.stream;
    result.text_score = r.score;
  }
  for (const core::ScoredStream& r : sound_results) {
    SearchResult& result = fused[r.stream];
    result.stream = r.stream;
    result.sound_score = r.score;
  }
  std::vector<SearchResult> out;
  out.reserve(fused.size());
  const double wt = config_.text_weight;
  for (auto& [stream, result] : fused) {
    result.score = wt * result.text_score + (1.0 - wt) * result.sound_score;
    out.push_back(result);
  }
  std::sort(out.begin(), out.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.stream < b.stream;  // Deterministic on ties.
            });
  if (out.size() > static_cast<std::size_t>(k)) out.resize(k);
  return out;
}

std::vector<SearchResult> SearchService::SearchBothModalities(
    const IndexPair& indices, const std::vector<TermId>& text_terms,
    const std::vector<TermId>& sound_terms, int fetch, int k) {
  const Timestamp now = clock_->Now();
  if (modality_pool_ != nullptr) {
    // Cross-modality fan-out: the sound tree runs on the modality pool
    // while this thread searches the text tree; the fuse waits for both.
    std::vector<core::ScoredStream> sound_results;
    TaskGroup group(modality_pool_.get());
    group.Submit([&] {
      sound_results = indices.sound->Query(sound_terms, fetch, now);
    });
    const auto text_results = indices.text->Query(text_terms, fetch, now);
    group.Wait();
    return Fuse(text_results, sound_results, k);
  }
  const auto text_results = indices.text->Query(text_terms, fetch, now);
  const auto sound_results = indices.sound->Query(sound_terms, fetch, now);
  return Fuse(text_results, sound_results, k);
}

std::vector<SearchResult> SearchService::SearchKeywords(
    const std::string& query, int k) {
  if (k <= 0) k = config_.default_k;
  ProcessedQuery processed;
  {
    std::lock_guard<std::mutex> rng_lock(rng_mu_);
    processed = query_processor_->ProcessKeywords(query, rng_);
  }
  // Over-fetch per modality so fusion has material to rerank. The pinned
  // pair keeps both indices alive for the whole search even if a restore
  // publishes a replacement mid-query.
  const auto indices = PinIndices();
  return SearchBothModalities(*indices, processed.text_terms,
                              processed.sound_terms, 2 * k, k);
}

std::vector<SearchResult> SearchService::SearchVoice(
    const audio::PcmBuffer& pcm, int k) {
  if (k <= 0) k = config_.default_k;
  ProcessedQuery processed;
  {
    std::lock_guard<std::mutex> rng_lock(rng_mu_);
    processed = query_processor_->ProcessVoice(pcm, rng_);
  }
  const auto indices = PinIndices();
  return SearchBothModalities(*indices, processed.text_terms,
                              processed.sound_terms, 2 * k, k);
}

audio::PcmBuffer SearchService::SynthesizeQuery(
    const std::vector<std::string>& words) {
  std::vector<audio::PhoneSpec> specs;
  for (const std::string& word : words) {
    for (const asr::PhonemeId phone : pipeline_->lexicon().Pronounce(word)) {
      specs.push_back(asr::PhonemeSpec(phone));
    }
  }
  audio::SynthesizerConfig synth_config;
  const audio::Synthesizer synth(synth_config);
  std::lock_guard<std::mutex> rng_lock(rng_mu_);
  return synth.Render(specs, rng_);
}

}  // namespace rtsi::service
