// Multi-modal query processing (the bottom half of Figure 4).
//
// Keyword queries are converted to voice (grapheme-to-phoneme, then
// lattice units) so they can also hit the sound LSM-tree; voice queries
// are decoded to phonetic lattices, converted to keywords (phone-sequence
// lookup against the lexicon), so they can also hit the text LSM-tree.
//
// The processor holds no index state: it reads frozen dictionaries and
// the pipeline's lexicon, so concurrent queries may share it freely —
// each caller supplies its own (or an externally serialized) Rng. The
// index side of a query runs against the immutable view the caller pins.

#ifndef RTSI_SERVICE_QUERY_PROCESSOR_H_
#define RTSI_SERVICE_QUERY_PROCESSOR_H_

#include <string>
#include <vector>

#include "asr/lattice.h"
#include "asr/lexicon.h"
#include "audio/pcm.h"
#include "common/types.h"
#include "service/ingestion.h"
#include "text/term_dictionary.h"

namespace rtsi::service {

/// The index-ready form of a query: terms for each modality's tree.
struct ProcessedQuery {
  std::vector<TermId> text_terms;
  std::vector<TermId> sound_terms;
  std::vector<std::string> keywords;  // Recognized / input keywords.
};

class QueryProcessor {
 public:
  /// Uses the pipeline's lexicon, decoder and dictionaries. Terms unknown
  /// to a dictionary are dropped for that modality (they cannot match).
  /// `stem_text` must match the ingestion configuration so query keywords
  /// hit the same index terms.
  QueryProcessor(IngestionPipeline* pipeline,
                 const text::TermDictionary* text_dict,
                 const text::TermDictionary* sound_dict, int lattice_ngram,
                 double lattice_alt_threshold, bool stem_text = false);

  /// Keyword query: tokenizes, also derives lattice units via G2P.
  ProcessedQuery ProcessKeywords(const std::string& query, Rng& rng) const;

  /// Voice query: decodes the audio, derives lattice units, and converts
  /// the best phone path back to keywords via the lexicon.
  ProcessedQuery ProcessVoice(const audio::PcmBuffer& pcm, Rng& rng) const;

  /// Recognizes whole words from a phone sequence by segmenting it against
  /// cached lexicon pronunciations (greedy longest match). Exposed for
  /// tests.
  std::vector<std::string> PhonesToKeywords(
      const std::vector<asr::PhonemeId>& phones) const;

 private:
  IngestionPipeline* pipeline_;              // Not owned.
  const text::TermDictionary* text_dict_;    // Not owned.
  const text::TermDictionary* sound_dict_;   // Not owned.
  int lattice_ngram_;
  double lattice_alt_threshold_;
  bool stem_text_;
  text::Stemmer stemmer_;
};

}  // namespace rtsi::service

#endif  // RTSI_SERVICE_QUERY_PROCESSOR_H_
