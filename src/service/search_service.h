// The multi-modal live audio search service: two RTSI LSM-trees (text and
// sound) behind one ingestion + query facade (Figure 4 end to end).

#ifndef RTSI_SERVICE_SEARCH_SERVICE_H_
#define RTSI_SERVICE_SEARCH_SERVICE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/rtsi_index.h"
#include "service/ingestion.h"
#include "service/query_processor.h"
#include "text/term_dictionary.h"

namespace rtsi::service {

struct SearchServiceConfig {
  core::RtsiConfig index;       // Shared by both trees.
  IngestionConfig ingestion;
  double text_weight = 0.6;     // Fusion: text vs sound modality.
  int default_k = 10;
  std::uint64_t seed = 42;
};

/// A fused multi-modal result.
struct SearchResult {
  StreamId stream = 0;
  double score = 0.0;       // Fused.
  double text_score = 0.0;
  double sound_score = 0.0;
};

class SearchService {
 public:
  SearchService(const SearchServiceConfig& config, Clock* clock);

  /// Ingests one ~60 s window of a live stream, given its ground-truth
  /// words (what the broadcaster said). Runs ASR simulation, indexes both
  /// modalities.
  void IngestWindow(StreamId stream, const std::vector<std::string>& words,
                    bool live = true);

  void FinishStream(StreamId stream);
  void DeleteStream(StreamId stream);
  void UpdatePopularity(StreamId stream, std::uint64_t delta);

  /// Keyword search across both modalities, fused. When the index is
  /// configured with query_threads > 0, the text and sound trees are
  /// searched concurrently (cross-modality fan-out).
  std::vector<SearchResult> SearchKeywords(const std::string& query, int k);

  /// Voice search: the query is an audio buffer.
  std::vector<SearchResult> SearchVoice(const audio::PcmBuffer& pcm, int k);

  /// Renders a spoken query from keywords (for demos and tests of the
  /// voice path).
  audio::PcmBuffer SynthesizeQuery(const std::vector<std::string>& words);

  core::RtsiIndex& text_index() { return *text_index_; }
  core::RtsiIndex& sound_index() { return *sound_index_; }

  /// Replaces both indices (snapshot restore path; see
  /// service/service_snapshot.h). Exclusive against in-flight queries and
  /// ingestion: a restore racing a query must not free the indices the
  /// query is traversing.
  void ReplaceIndices(std::unique_ptr<core::RtsiIndex> text,
                      std::unique_ptr<core::RtsiIndex> sound) {
    std::unique_lock<std::shared_mutex> lock(indices_mu_);
    text_index_ = std::move(text);
    sound_index_ = std::move(sound);
  }
  text::TermDictionary& text_dictionary() { return text_dict_; }
  text::TermDictionary& sound_dictionary() { return sound_dict_; }
  IngestionPipeline& pipeline() { return *pipeline_; }
  const QueryProcessor& query_processor() const { return *query_processor_; }

 private:
  std::vector<SearchResult> Fuse(
      const std::vector<core::ScoredStream>& text_results,
      const std::vector<core::ScoredStream>& sound_results, int k) const;

  /// Runs the two single-modality queries (concurrently when the modality
  /// pool exists) and fuses. Caller must hold indices_mu_ shared.
  std::vector<SearchResult> SearchBothModalities(
      const std::vector<TermId>& text_terms,
      const std::vector<TermId>& sound_terms, int fetch, int k);

  SearchServiceConfig config_;
  Clock* clock_;  // Not owned.
  text::TermDictionary text_dict_;
  text::TermDictionary sound_dict_;
  std::unique_ptr<IngestionPipeline> pipeline_;
  std::unique_ptr<QueryProcessor> query_processor_;
  // Shared for queries/ingestion, exclusive for ReplaceIndices.
  mutable std::shared_mutex indices_mu_;
  std::unique_ptr<core::RtsiIndex> text_index_;
  std::unique_ptr<core::RtsiIndex> sound_index_;
  // Cross-modality fan-out workers (one task per query; the calling
  // thread runs the text tree while the pool runs the sound tree). Null
  // when query_threads == 0 so the default stays fully sequential.
  std::unique_ptr<ThreadPool> modality_pool_;
  Rng rng_;
};

}  // namespace rtsi::service

#endif  // RTSI_SERVICE_SEARCH_SERVICE_H_
