// The multi-modal live audio search service: two RTSI LSM-trees (text and
// sound) behind one ingestion + query facade (Figure 4 end to end).

#ifndef RTSI_SERVICE_SEARCH_SERVICE_H_
#define RTSI_SERVICE_SEARCH_SERVICE_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/atomic_shared_ptr.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/rtsi_index.h"
#include "service/ingestion.h"
#include "service/query_processor.h"
#include "shard/shard_set.h"
#include "text/term_dictionary.h"

namespace rtsi::service {

struct SearchServiceConfig {
  core::RtsiConfig index;       // Shared by both trees (per shard).
  IngestionConfig ingestion;
  double text_weight = 0.6;     // Fusion: text vs sound modality.
  int default_k = 10;
  std::uint64_t seed = 42;
  /// Partitions each modality across this many independent shards
  /// (DESIGN.md §6i). 1 = the classic single-index layout.
  int shards = 1;
  /// Pool workers for the scatter phase of sharded queries (0 = scatter
  /// on the calling thread; right for small machines and shards == 1).
  int scatter_threads = 0;
  /// Per-shard compaction-policy overrides, applied to both modality
  /// trees: entry i overrides shard i's LSM policy; shards beyond the
  /// vector (and all shards when it is empty) keep `index.lsm.policy`.
  std::vector<lsm::MergePolicy> shard_merge_policies;
};

/// One window of one stream, for batched ingestion (the async server
/// coalesces queued /ingest requests into one IngestBatch call).
struct IngestOp {
  StreamId stream = 0;
  std::vector<std::string> words;
  bool live = true;
};

/// A fused multi-modal result.
struct SearchResult {
  StreamId stream = 0;
  double score = 0.0;       // Fused.
  double text_score = 0.0;
  double sound_score = 0.0;
};

class SearchService {
 public:
  /// Both modality indices, pinned as one unit: a query or ingestion call
  /// loads the pair once and works against a consistent (text, sound)
  /// generation even if a snapshot restore publishes a new pair mid-call.
  /// Each modality is an IndexShardSet — one shard by default, N when
  /// `SearchServiceConfig::shards` asks for a partitioned service.
  struct IndexPair {
    std::shared_ptr<shard::IndexShardSet> text;
    std::shared_ptr<shard::IndexShardSet> sound;
  };

  SearchService(const SearchServiceConfig& config, Clock* clock);

  /// Ingests one ~60 s window of a live stream, given its ground-truth
  /// words (what the broadcaster said). Runs ASR simulation, indexes both
  /// modalities. On a sharded service (shards > 1) a stream id that was
  /// already retired by FinishStream/DeleteStream is rejected with
  /// FailedPrecondition before either modality is touched (the sharded
  /// deployment's documented no-id-reuse precondition); nothing is
  /// indexed for a rejected window.
  Status IngestWindow(StreamId stream, const std::vector<std::string>& words,
                      bool live = true);

  /// Ingests a batch of windows in order against one pinned pair. ASR
  /// simulation for the whole batch runs under a single RNG acquisition,
  /// so a batched run draws the same sequence as the same ops issued
  /// one by one — batching changes throughput, not results. The sharded
  /// id-reuse guard validates every op before any window of the batch is
  /// applied; a rejected batch indexes nothing.
  Status IngestBatch(const std::vector<IngestOp>& ops);

  void FinishStream(StreamId stream);
  void DeleteStream(StreamId stream);
  void UpdatePopularity(StreamId stream, std::uint64_t delta);

  /// Keyword search across both modalities, fused. When the index is
  /// configured with query_threads > 0, the text and sound trees are
  /// searched concurrently (cross-modality fan-out).
  std::vector<SearchResult> SearchKeywords(const std::string& query, int k);

  /// Voice search: the query is an audio buffer.
  std::vector<SearchResult> SearchVoice(const audio::PcmBuffer& pcm, int k);

  /// Renders a spoken query from keywords (for demos and tests of the
  /// voice path). Thread-safe: the shared query RNG is taken under its
  /// lock, like every other entry point that draws from it.
  audio::PcmBuffer SynthesizeQuery(const std::vector<std::string>& words);

  /// Pins the currently published index pair. The returned shared_ptrs
  /// keep both indices alive across any concurrent ReplaceIndices, so
  /// this is the safe way to hold an index beyond one expression.
  std::shared_ptr<const IndexPair> PinIndices() const {
    return indices_.Load();
  }

  // Raw references into the currently published pair, for setup,
  // inspection and tests. Single-threaded-setup contract: the reference
  // is only guaranteed valid while no concurrent ReplaceIndices can run —
  // a restore publishing mid-use would free the index under the caller.
  // Concurrent readers must use PinIndices() instead; the assertion
  // catches the one racy overlap we can observe cheaply.
  shard::IndexShardSet& text_shards() {
    assert(restores_in_flight_.load(std::memory_order_acquire) == 0 &&
           "text_shards(): use PinIndices() when a restore can race");
    return *indices_.Load()->text;
  }
  shard::IndexShardSet& sound_shards() {
    assert(restores_in_flight_.load(std::memory_order_acquire) == 0 &&
           "sound_shards(): use PinIndices() when a restore can race");
    return *indices_.Load()->sound;
  }

  // Legacy single-index accessors: the underlying RtsiIndex of shard 0.
  // Only meaningful when the service runs unsharded (shards == 1) — the
  // snapshot path and the pre-shard tests use these.
  core::RtsiIndex& text_index() { return text_shards().shard_index(0); }
  core::RtsiIndex& sound_index() { return sound_shards().shard_index(0); }

  int num_shards() const { return std::max(1, config_.shards); }

  /// Replaces both indices (snapshot restore path; see
  /// service/service_snapshot.h) by publishing a new pair with one atomic
  /// swap — queries in flight finish against the pair they pinned and the
  /// old indices are freed when the last pin drops. No query fleet stall.
  /// Operations that raced the swap were applied to the replaced pair and
  /// vanish with it, exactly as if they had completed before the restore.
  /// Each restored index is adopted as a single-shard set (restores are a
  /// single-shard operation; see service/service_snapshot.h).
  void ReplaceIndices(std::unique_ptr<core::RtsiIndex> text,
                      std::unique_ptr<core::RtsiIndex> sound);

  text::TermDictionary& text_dictionary() { return text_dict_; }
  text::TermDictionary& sound_dictionary() { return sound_dict_; }
  IngestionPipeline& pipeline() { return *pipeline_; }
  const QueryProcessor& query_processor() const { return *query_processor_; }

 private:
  std::vector<SearchResult> Fuse(
      const std::vector<core::ScoredStream>& text_results,
      const std::vector<core::ScoredStream>& sound_results, int k) const;

  /// Runs the two single-modality queries (concurrently when the modality
  /// pool exists) against the pinned pair and fuses.
  std::vector<SearchResult> SearchBothModalities(
      const IndexPair& indices, const std::vector<TermId>& text_terms,
      const std::vector<TermId>& sound_terms, int fetch, int k);

  SearchServiceConfig config_;
  Clock* clock_;  // Not owned.
  text::TermDictionary text_dict_;
  text::TermDictionary sound_dict_;
  std::unique_ptr<IngestionPipeline> pipeline_;
  std::unique_ptr<QueryProcessor> query_processor_;
  // Epoch-published: readers pin with one atomic load, ReplaceIndices
  // swaps in a freshly built pair. No reader-writer lock anywhere on the
  // query path.
  AtomicSharedPtr<const IndexPair> indices_;
  std::atomic<int> restores_in_flight_{0};
  // Cross-modality fan-out workers (one task per query; the calling
  // thread runs the text tree while the pool runs the sound tree). Null
  // when query_threads == 0 so the default stays fully sequential.
  std::unique_ptr<ThreadPool> modality_pool_;
  // The service RNG feeds ASR simulation for ingestion, query processing
  // and synthesis; entry points can run concurrently, so draws are
  // serialized by rng_mu_ (single-threaded call sequences are unaffected,
  // keeping seeded runs deterministic).
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace rtsi::service

#endif  // RTSI_SERVICE_SEARCH_SERVICE_H_
