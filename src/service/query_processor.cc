#include "service/query_processor.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace rtsi::service {
namespace {

// Phone ids packed into a string key for the reverse-lexicon map.
std::string PhoneKey(const asr::PhonemeId* phones, std::size_t n) {
  std::string key;
  key.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    key.push_back(static_cast<char>(phones[i] + 1));
  }
  return key;
}

}  // namespace

QueryProcessor::QueryProcessor(IngestionPipeline* pipeline,
                               const text::TermDictionary* text_dict,
                               const text::TermDictionary* sound_dict,
                               int lattice_ngram,
                               double lattice_alt_threshold, bool stem_text)
    : pipeline_(pipeline),
      text_dict_(text_dict),
      sound_dict_(sound_dict),
      lattice_ngram_(lattice_ngram),
      lattice_alt_threshold_(lattice_alt_threshold),
      stem_text_(stem_text) {}

ProcessedQuery QueryProcessor::ProcessKeywords(const std::string& query,
                                               Rng& rng) const {
  ProcessedQuery out;
  const text::Tokenizer tokenizer;
  out.keywords = tokenizer.Tokenize(query);

  for (const std::string& keyword : out.keywords) {
    const TermId id = text_dict_->Lookup(
        stem_text_ ? stemmer_.Stem(keyword) : keyword);
    if (id != kInvalidTermId) out.text_terms.push_back(id);
  }

  // Keyword -> voice: derive lattice units through G2P so the query also
  // hits the sound tree. Pronunciation uses the raw (unstemmed) words.
  const asr::PhoneticLattice lattice =
      pipeline_->BuildLattice(out.keywords, rng);
  for (const std::string& unit :
       lattice.ExtractUnits(lattice_ngram_, lattice_alt_threshold_)) {
    const TermId id = sound_dict_->Lookup(unit);
    if (id != kInvalidTermId) out.sound_terms.push_back(id);
  }
  return out;
}

std::vector<std::string> QueryProcessor::PhonesToKeywords(
    const std::vector<asr::PhonemeId>& phones) const {
  // Reverse lexicon: packed phone sequence -> word. Built per call from a
  // snapshot; voice queries are interactive-rate, not bulk-rate.
  std::unordered_map<std::string, std::string> reverse;
  std::size_t max_len = 1;
  for (auto& [word, pron] : pipeline_->lexicon().Entries()) {
    if (pron.empty()) continue;
    max_len = std::max(max_len, pron.size());
    reverse.emplace(PhoneKey(pron.data(), pron.size()), word);
  }

  // Greedy longest-match segmentation of the phone sequence.
  std::vector<std::string> words;
  std::size_t pos = 0;
  while (pos < phones.size()) {
    bool matched = false;
    const std::size_t longest = std::min(max_len, phones.size() - pos);
    for (std::size_t len = longest; len >= 1; --len) {
      auto it = reverse.find(PhoneKey(&phones[pos], len));
      if (it != reverse.end()) {
        words.push_back(it->second);
        pos += len;
        matched = true;
        break;
      }
    }
    if (!matched) ++pos;  // Unknown phone: skip it.
  }
  return words;
}

ProcessedQuery QueryProcessor::ProcessVoice(const audio::PcmBuffer& pcm,
                                            Rng& rng) const {
  (void)rng;
  ProcessedQuery out;
  const asr::PhoneticLattice lattice = pipeline_->decoder().Decode(pcm);

  for (const std::string& unit :
       lattice.ExtractUnits(lattice_ngram_, lattice_alt_threshold_)) {
    const TermId id = sound_dict_->Lookup(unit);
    if (id != kInvalidTermId) out.sound_terms.push_back(id);
  }

  // Voice -> keywords: segment the best phone path into lexicon words.
  out.keywords = PhonesToKeywords(lattice.BestPath());
  for (const std::string& keyword : out.keywords) {
    const TermId id = text_dict_->Lookup(
        stem_text_ ? stemmer_.Stem(keyword) : keyword);
    if (id != kInvalidTermId) out.text_terms.push_back(id);
  }
  return out;
}

}  // namespace rtsi::service
