// Ingestion pipeline: one 60-second audio window in, two term-count bags
// out (text terms for the text LSM-tree, phonetic lattice units for the
// sound LSM-tree). Mirrors the top half of the paper's Figure 4.
//
// Two acoustic paths are supported:
//  - kFull: synthesize a waveform from the window's phones, extract MFCCs,
//    and decode a lattice through the acoustic model (the complete code
//    path; used in tests and examples);
//  - kDirect: build the lattice directly from the G2P phones with the
//    transcriber's word-error model only (identical downstream artefacts,
//    ~1000x faster; used for corpus-scale benches).

#ifndef RTSI_SERVICE_INGESTION_H_
#define RTSI_SERVICE_INGESTION_H_

#include <memory>
#include <string>
#include <vector>

#include "asr/acoustic_model.h"
#include "asr/decoder.h"
#include "asr/lattice.h"
#include "asr/lexicon.h"
#include "asr/transcriber.h"
#include "audio/mfcc.h"
#include "audio/synthesizer.h"
#include "common/rng.h"
#include "core/search_index.h"
#include "text/stemmer.h"
#include "text/stopwords.h"
#include "text/term_dictionary.h"
#include "text/tokenizer.h"

namespace rtsi::service {

enum class AcousticPath {
  kFull,
  kDirect,
};

struct IngestionConfig {
  AcousticPath acoustic_path = AcousticPath::kDirect;
  int lattice_ngram = 3;            // Lattice-unit n-gram order.
  double lattice_alt_threshold = 0.2;
  bool stem_text = false;           // Fold inflections (English corpora).
  asr::TranscriberConfig transcriber;
};

/// Output of processing one window.
struct WindowArtifacts {
  std::vector<core::TermCount> text_terms;
  std::vector<core::TermCount> sound_terms;
  std::vector<std::string> transcript;  // Post-error-model words.
};

class IngestionPipeline {
 public:
  /// `text_dict` and `sound_dict` intern text words and lattice units
  /// respectively; both must outlive the pipeline.
  IngestionPipeline(const IngestionConfig& config,
                    text::TermDictionary* text_dict,
                    text::TermDictionary* sound_dict);

  /// Processes the ground-truth words of one window.
  WindowArtifacts ProcessWindow(const std::vector<std::string>& words,
                                Rng& rng);

  /// Lattice for a word sequence (shared with voice-query processing).
  asr::PhoneticLattice BuildLattice(const std::vector<std::string>& words,
                                    Rng& rng) const;

  asr::Lexicon& lexicon() { return lexicon_; }
  const audio::MfccExtractor& mfcc() const { return mfcc_; }
  const asr::AcousticModel& acoustic_model() const { return *model_; }
  const asr::LatticeDecoder& decoder() const { return *decoder_; }

 private:
  IngestionConfig config_;
  text::TermDictionary* text_dict_;   // Not owned.
  text::TermDictionary* sound_dict_;  // Not owned.
  text::Tokenizer tokenizer_;
  text::StopwordFilter stopwords_;
  text::Stemmer stemmer_;
  asr::Lexicon lexicon_;
  audio::MfccExtractor mfcc_;
  audio::Synthesizer synthesizer_;
  std::unique_ptr<asr::AcousticModel> model_;
  std::unique_ptr<asr::LatticeDecoder> decoder_;
  std::unique_ptr<asr::Transcriber> transcriber_;
};

/// Aggregates duplicate terms into TermCounts (helper shared with tests).
std::vector<core::TermCount> CountTerms(const std::vector<TermId>& ids);

}  // namespace rtsi::service

#endif  // RTSI_SERVICE_INGESTION_H_
