// Whole-service persistence: both RTSI trees (text + sound) and both term
// dictionaries, across three files sharing a path prefix:
//   <prefix>.text   — text index snapshot (storage/snapshot.h format)
//   <prefix>.sound  — sound index snapshot
//   <prefix>.dicts  — term dictionaries (strings in id order + doc freqs)
//
// Loading must target a freshly constructed SearchService (empty
// dictionaries); it replaces the service's indices wholesale.

#ifndef RTSI_SERVICE_SERVICE_SNAPSHOT_H_
#define RTSI_SERVICE_SERVICE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "service/search_service.h"

namespace rtsi::service {

/// Saves the service's full state. The service must be quiescent.
Status SaveServiceSnapshot(SearchService& service,
                           const std::string& path_prefix);

/// Restores state saved by SaveServiceSnapshot into `service`, which must
/// be freshly constructed (empty dictionaries).
Status LoadServiceSnapshot(SearchService& service,
                           const std::string& path_prefix);

}  // namespace rtsi::service

#endif  // RTSI_SERVICE_SERVICE_SNAPSHOT_H_
