// Configuration of the RTSI index (Table III defaults).
//
// The paper's Table III is partially garbled in the available text; the
// defaults here are our documented choices (see DESIGN.md §4) and every
// bench sweeps the variables the paper varies.

#ifndef RTSI_CORE_CONFIG_H_
#define RTSI_CORE_CONFIG_H_

#include "lsm/lsm_tree.h"

namespace rtsi::core {

/// Weights of Equation 1: f(q,p) = wp*pop + wr*rel + wf*frsh.
struct ScoreWeights {
  double pop = 0.3;
  double rel = 0.5;
  double frsh = 0.2;
};

/// How the popularity part of the pruning bound is computed.
enum class BoundMode {
  /// Per-term popularity/freshness snapshots from the inverted lists (the
  /// paper's design). Exact unless popularity or freshness updates landed
  /// after insertion: stale snapshots can under-estimate a component's
  /// bound, so early termination may drop a drift-affected stream the
  /// full walk would have returned.
  kSnapshot,
  /// Global ceilings — the maximum popularity counter and the maximum
  /// live freshness: looser but always sound, even under post-seal
  /// updates — pruning can then never change the result set.
  kGlobalPop,
};

struct RtsiConfig {
  /// LSM knobs: delta, rho, Huffman compression, and the compaction
  /// policy (lsm.policy / lsm.tier_runs). kGeometric is the paper's
  /// Algorithm 1 cascade; kTiered accumulates lsm.tier_runs runs per
  /// level before folding the tier one level down (lower write
  /// amplification, more runs on the read path — which the skip headers
  /// keep cheap); kFullCompaction is the everything-into-one ablation
  /// baseline. Snapshots (v5+) persist the policy; RtsiIndex::
  /// SetMergePolicy switches it at runtime.
  lsm::LsmTree::Config lsm;
  ScoreWeights weights;
  double freshness_tau_seconds = 6.0 * 3600.0;  // Exponential decay scale.
  bool use_bound = true;             // Top-k early termination (Figure 17).
  BoundMode bound_mode = BoundMode::kSnapshot;

  /// Consult the sealed components' skip headers during query planning:
  /// the per-component term Bloom filter proves query terms absent
  /// (skipping the component without touching its posting maps), the
  /// per-term summaries replace the hash-map Bounds() lookups, and — with
  /// use_bound on — candidates are admission-screened against the current
  /// top-k threshold before full scoring. Screening drops a candidate
  /// only when a sound upper bound of its score (live popularity, live
  /// freshness, summary-bounded relevance) is strictly below the k-th
  /// score, so results are bit-identical with the flag on or off in every
  /// bound mode (see DESIGN.md §6f). Headers are always built; this only
  /// toggles consulting them (off = the PR 5 walk, kept for A/B benches).
  bool use_skip_header = true;

  /// Back the live ingest structures (unsealed L0 posting vectors, the
  /// live-term table's counter maps) with WindowArenas instead of the
  /// global heap: per-L0-shard arenas rotated at every freeze plus
  /// per-term-shard table arenas with free-list recycling. Query results
  /// are bit-identical on or off (the arena changes where bytes live,
  /// never what they say); off = the pre-arena allocation behavior, kept
  /// for A/B benches. Mirrored into lsm.use_arena at construction.
  bool use_arena = true;
  int default_k = 10;

  /// Run merge cascades on a background thread instead of the inserting
  /// thread. Removes the merge spikes from insertion latency (Figure 6);
  /// queries are unaffected either way — they run against the immutable
  /// IndexView they pinned at entry. Off by default to match the paper's
  /// measured setup.
  bool async_merge = false;

  /// Degree of parallelism for the sealed-component phase of a query.
  /// 0 = the legacy single-threaded path (default; behavior unchanged).
  /// n >= 1 = the parallel executor with n-way traversal: the querying
  /// thread plus n-1 workers from a pool owned by the index.
  ///
  /// The executor always prunes with the sound kGlobalPop ceilings (a
  /// timing-dependent kSnapshot prune would make parallel results racy),
  /// so with query_threads >= 1 results are deterministic and
  /// bit-identical to the sequential path under kGlobalPop pruning; only
  /// QueryStats counters may differ, since pruning opportunities depend
  /// on traversal timing. A kSnapshot baseline can additionally miss
  /// drift-affected streams that the executor correctly retains.
  int query_threads = 0;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_CONFIG_H_
