// Reusable per-query scratch buffers for the RTSI query path.
//
// The scoring hot path used to allocate a fresh tf vector per candidate
// and rebuild a stream -> tf-vector map per query (Asadi & Lin's
// observation: allocation discipline on the scoring path is what keeps
// real-time tail latency flat). A QueryScratch owns all of those buffers;
// a query (or a parallel-executor worker) leases one from the index's
// ScratchPool, so steady state runs without heap allocation. No
// thread_local involved: leases make ownership explicit and keep the pool
// usable from any thread.

#ifndef RTSI_CORE_QUERY_SCRATCH_H_
#define RTSI_CORE_QUERY_SCRATCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "exec/query_plan.h"
#include "exec/traversal.h"
#include "index/posting.h"

namespace rtsi::core {

/// All transient buffers of one query execution. Members keep their
/// capacity across Clear(), so a recycled scratch serves the next query
/// allocation-free.
struct QueryScratch {
  // The query's execution plan (deduplicated terms + idfs live in its
  // vectors, recycled across queries) and the sorted flat set used for
  // O(log n) dedup membership during the build.
  exec::QueryPlan plan;
  std::vector<TermId> term_set;

  // Per-candidate tf buffer (stride = q.size()), reused across candidates.
  std::vector<TermFreq> tfs;

  // L0 accumulation: stream -> slot, slot-major tf matrix with stride
  // q.size(), and slot -> stream (deterministic insertion order).
  std::unordered_map<StreamId, std::uint32_t> l0_slot;
  std::vector<TermFreq> l0_tf;
  std::vector<StreamId> l0_streams;

  // Phase-1 live-table matches.
  std::vector<StreamId> table_matches;

  // Sealed-component traversal: round buffer and per-component candidate
  // dedup. The dense epoch-stamped filter (seen_stamps/seen_epoch) handles
  // stream ids below its size in O(1) without per-component clearing;
  // component_seen is the overflow set for ids beyond the dense range.
  // Deliberately NOT reset by Clear(): the epoch discipline makes stale
  // stamps harmless and re-zeroing the array per query would defeat it.
  std::vector<index::Posting> round;
  // Per round posting, the query-term index whose list yielded it
  // (parallel to `round`; filled by the term-reporting NextRound).
  std::vector<std::uint32_t> round_terms;
  std::unordered_set<StreamId> component_seen;
  std::vector<std::uint32_t> seen_stamps;
  std::uint32_t seen_epoch = 0;

  // Per-component bound inputs.
  std::vector<exec::PerTermBound> per_term;

  // Admission-screen ingredients from the skip-header summaries:
  // screen_tfidf is component-major with stride q.size(); entry
  // [c * nq + i] bounds the tf-idf mass the terms *other than* i can
  // contribute inside component c. screen_own is the per-component
  // working buffer of own-term maxima.
  std::vector<double> screen_tfidf;
  std::vector<double> screen_own;

  void Clear() {
    plan.terms.clear();
    plan.idfs.clear();
    term_set.clear();
    tfs.clear();
    l0_slot.clear();
    l0_tf.clear();
    l0_streams.clear();
    table_matches.clear();
    round.clear();
    round_terms.clear();
    component_seen.clear();
    per_term.clear();
    screen_tfidf.clear();
    screen_own.clear();
    // seen_stamps/seen_epoch intentionally survive (see above).
  }
};

/// Per-component stream dedup over a scratch's buffers. A hash-set insert
/// per scanned posting was ~30% of sealed-phase latency; stamping a dense
/// stream-indexed array with a per-component epoch replaces it with one
/// array probe. Ids beyond the dense range (sparse id spaces; streams
/// inserted after the query captured max_stream_id) fall back to the hash
/// set, so correctness never depends on density.
class StreamSeenFilter {
 public:
  /// Sizes the dense range for `max_stream` (capped at kDenseLimit ids =
  /// 16 MiB of stamps, kept across queries by the scratch).
  StreamSeenFilter(QueryScratch& scratch, StreamId max_stream)
      : stamps_(scratch.seen_stamps),
        epoch_(scratch.seen_epoch),
        overflow_(scratch.component_seen) {
    const auto want = static_cast<std::size_t>(
        std::min<StreamId>(max_stream + 1, kDenseLimit));
    if (stamps_.size() < want) stamps_.resize(want, 0);
  }

  /// Starts a new component: all ids become unseen in O(1).
  void NextComponent() {
    if (++epoch_ == 0) {  // Epoch wrap: stale stamps could collide.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
    overflow_.clear();
  }

  /// True the first time `stream` is offered within the current component.
  bool Insert(StreamId stream) {
    if (stream < stamps_.size()) {
      std::uint32_t& stamp = stamps_[static_cast<std::size_t>(stream)];
      if (stamp == epoch_) return false;
      stamp = epoch_;
      return true;
    }
    return overflow_.insert(stream).second;
  }

 private:
  static constexpr StreamId kDenseLimit = StreamId{1} << 22;

  std::vector<std::uint32_t>& stamps_;
  std::uint32_t& epoch_;
  std::unordered_set<StreamId>& overflow_;
};

/// A free-list of QueryScratch instances shared by all queries of one
/// index. Acquire pops a recycled scratch (or creates the first few);
/// Release clears and returns it. Thread-safe; the lock is taken once per
/// query, not per candidate.
class ScratchPool {
 public:
  std::unique_ptr<QueryScratch> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        auto scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<QueryScratch>();
  }

  void Release(std::unique_ptr<QueryScratch> scratch) {
    if (scratch == nullptr) return;
    scratch->Clear();
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(scratch));
  }

  /// Drops cached scratches beyond `keep` (SetQueryThreads shrink: steady
  /// state needs one scratch per executing thread). Outstanding leases are
  /// unaffected — a scratch released later is simply cached again.
  void TrimTo(std::size_t keep) {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() > keep) free_.resize(keep);
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<QueryScratch>> free_;
};

/// RAII lease of a scratch from a pool.
class ScratchLease {
 public:
  explicit ScratchLease(ScratchPool& pool)
      : pool_(pool), scratch_(pool.Acquire()) {}
  ~ScratchLease() { pool_.Release(std::move(scratch_)); }

  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  QueryScratch& operator*() { return *scratch_; }
  QueryScratch* operator->() { return scratch_.get(); }

 private:
  ScratchPool& pool_;
  std::unique_ptr<QueryScratch> scratch_;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_QUERY_SCRATCH_H_
