// Query explanation: a structured account of how one query was answered —
// which phases produced candidates, which components were visited or
// pruned by the upper bound, and how each result's score decomposes into
// Equation 1's popularity / relevance / freshness parts.
//
// For operators debugging ranking ("why is this stream first?") and for
// tests asserting the pruning machinery (the explanation is computed by
// the same code path as the query itself).

#ifndef RTSI_CORE_EXPLAIN_H_
#define RTSI_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace rtsi::core {

/// Score decomposition of one result (Equation 1 terms, pre-weighting).
struct ScoreBreakdown {
  StreamId stream = 0;
  double pop_score = 0.0;   // Normalized popularity in [0, 1].
  double rel_score = 0.0;   // Squashed tf-idf in [0, 1).
  double frsh_score = 0.0;  // Freshness decay in (0, 1].
  double total = 0.0;       // wp*pop + wr*rel + wf*frsh.
  /// Per-query-term total term frequencies used for rel.
  std::vector<TermFreq> term_tfs;
  /// Where the candidate was discovered.
  enum class Source { kLiveTable, kL0Scan, kSealedComponent } source =
      Source::kSealedComponent;
};

/// One sealed component's fate during the query.
struct ComponentExplanation {
  int level = 0;
  std::size_t num_postings = 0;
  double upper_bound = 0.0;
  bool visited = false;          // False = pruned by the bound.
  bool skipped = false;          // Skip header proved every term absent.
  bool terminated_early = false; // Visited but cut off by the threshold.
  std::size_t postings_yielded = 0;
};

struct QueryExplanation {
  std::vector<TermId> terms;
  std::vector<double> idfs;
  int k = 0;
  Timestamp now = 0;

  std::size_t live_table_candidates = 0;
  std::size_t l0_candidates = 0;
  std::vector<ComponentExplanation> components;

  /// Results in rank order with their decompositions.
  std::vector<ScoreBreakdown> results;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_EXPLAIN_H_
