#include "core/top_k.h"

#include <algorithm>
#include <limits>

namespace rtsi::core {

TopKHeap::TopKHeap(int k) : k_(k < 1 ? 1 : static_cast<std::size_t>(k)) {}

void TopKHeap::Offer(StreamId stream, double score) {
  if (heap_.size() < k_) {
    heap_.push({stream, score});
    return;
  }
  if (score > heap_.top().score) {
    heap_.pop();
    heap_.push({stream, score});
  }
}

double TopKHeap::KthScore() const {
  if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
  return heap_.top().score;
}

std::vector<ScoredStream> TopKHeap::SortedResults() const {
  auto copy = heap_;
  std::vector<ScoredStream> results;
  results.reserve(copy.size());
  while (!copy.empty()) {
    results.push_back(copy.top());
    copy.pop();
  }
  std::reverse(results.begin(), results.end());
  return results;
}

}  // namespace rtsi::core
