#include "core/top_k.h"

#include <iterator>
#include <limits>

namespace rtsi::core {

TopKHeap::TopKHeap(int k) : k_(k < 1 ? 1 : static_cast<std::size_t>(k)) {}

void TopKHeap::Offer(StreamId stream, double score) {
  const auto it = index_.find(stream);
  if (it != index_.end()) {
    // Keep-best upsert: replace the retained entry only when the new
    // score ranks strictly above it.
    if (!RanksAbove({stream, score}, {stream, it->second})) return;
    entries_.erase({stream, it->second});
    entries_.insert({stream, score});
    it->second = score;
    return;
  }
  if (entries_.size() < k_) {
    entries_.insert({stream, score});
    index_.emplace(stream, score);
    return;
  }
  const auto worst = std::prev(entries_.end());
  if (RanksAbove({stream, score}, *worst)) {
    index_.erase(worst->stream);
    entries_.erase(worst);
    entries_.insert({stream, score});
    index_.emplace(stream, score);
  }
}

double TopKHeap::KthScore() const {
  if (entries_.size() < k_) return -std::numeric_limits<double>::infinity();
  return std::prev(entries_.end())->score;
}

std::vector<ScoredStream> TopKHeap::SortedResults() const {
  return {entries_.begin(), entries_.end()};
}

SharedTopK::SharedTopK(int k)
    : heap_(k), threshold_(-std::numeric_limits<double>::infinity()) {}

void SharedTopK::Offer(StreamId stream, double score) {
  // A candidate strictly below the published k-th score can neither enter
  // the heap nor win a tie-break; equal scores must take the lock because
  // the stream id may still rank above the current k-th.
  if (score < threshold_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mu_);
  heap_.Offer(stream, score);
  threshold_.store(heap_.KthScore(), std::memory_order_relaxed);
}

std::size_t SharedTopK::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

std::vector<ScoredStream> SharedTopK::SortedResults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.SortedResults();
}

}  // namespace rtsi::core
