#include "core/explain.h"

#include <cstdio>

namespace rtsi::core {
namespace {

const char* SourceName(ScoreBreakdown::Source source) {
  switch (source) {
    case ScoreBreakdown::Source::kLiveTable:
      return "live-table";
    case ScoreBreakdown::Source::kL0Scan:
      return "L0";
    case ScoreBreakdown::Source::kSealedComponent:
      return "sealed";
  }
  return "?";
}

}  // namespace

std::string QueryExplanation::ToString() const {
  std::string out;
  char buf[256];

  out += "query terms:";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    std::snprintf(buf, sizeof(buf), " %u(idf=%.2f)", terms[i],
                  i < idfs.size() ? idfs[i] : 0.0);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  k=%d\n", k);
  out += buf;

  std::snprintf(buf, sizeof(buf),
                "candidates: %zu from live table, %zu from L0\n",
                live_table_candidates, l0_candidates);
  out += buf;

  for (const auto& component : components) {
    std::snprintf(buf, sizeof(buf),
                  "component L%d (%zu postings): bound=%.4f %s%s\n",
                  component.level, component.num_postings,
                  component.upper_bound,
                  component.visited   ? "visited"
                  : component.skipped ? "SKIPPED (no query term)"
                                      : "PRUNED",
                  component.terminated_early ? " (early termination)" : "");
    out += buf;
    if (component.visited) {
      std::snprintf(buf, sizeof(buf), "  postings yielded: %zu\n",
                    component.postings_yielded);
      out += buf;
    }
  }

  int rank = 1;
  for (const auto& r : results) {
    std::snprintf(buf, sizeof(buf),
                  "#%d stream %llu  score=%.4f  (pop=%.3f rel=%.3f "
                  "frsh=%.3f)  via %s  tfs=[",
                  rank++, static_cast<unsigned long long>(r.stream),
                  r.total, r.pop_score, r.rel_score, r.frsh_score,
                  SourceName(r.source));
    out += buf;
    for (std::size_t i = 0; i < r.term_tfs.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%u", i > 0 ? "," : "",
                    r.term_tfs[i]);
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace rtsi::core
