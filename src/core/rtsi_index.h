// RTSI: the Real-Time Search Index for live audio streams.
//
// Implements the paper's Algorithms 1 (insertion), 2 (merging with
// queries kept exact via epoch-published immutable views; delegated to
// lsm::LsmTree) and 3 (top-k query answering with upper-bound early
// termination), plus popularity updates and lazy deletion.
//
// Index anatomy (Section IV-B):
//  - an LSM-tree of inverted indices whose postings carry (pop snapshot,
//    freshness, tf) inline, with three sorted lists per term in sealed
//    components;
//  - a small per-stream hash table (StreamInfoTable) for the mutable
//    popularity counter and freshness;
//  - a small live-term hash table (LiveTermTable) holding total term
//    frequencies of live (and not-yet-consolidated) streams, so scoring
//    never visits multiple components.
//
// Consolidation invariant: a stream is present in the live-term table iff
// it is live or its postings span more than one LSM component. Hence any
// candidate not in the table has all its postings inside a single sealed
// component, which makes per-component bounds and random accesses exact.
// (One documented transient exception: a stream finished while its level-0
// postings are being merged can momentarily evade the table; its score is
// still computed exactly, only the pruning bound may be optimistic.)

#ifndef RTSI_CORE_RTSI_INDEX_H_
#define RTSI_CORE_RTSI_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/doc_freq.h"
#include "core/explain.h"
#include "core/query_scratch.h"
#include "core/scorer.h"
#include "core/search_index.h"
#include "exec/query_plan.h"
#include "exec/sink.h"
#include "index/live_term_table.h"
#include "index/stream_info_table.h"
#include "lsm/lsm_tree.h"

namespace rtsi::core {

/// Corpus-global scoring inputs shared by every shard of a sharded
/// deployment (shard::IndexShardSet). Scores depend on two statistics
/// that span the whole corpus, not one partition: the document-frequency
/// table (idf) and the maximum popularity counter (the PopScore
/// normalizer). Each shard keeps its own authoritative tables — those are
/// what its snapshot persists — and additionally folds every update into
/// this shared aggregate, so any shard's query scores a candidate exactly
/// as a single unsharded index holding all streams would (the
/// scatter-gather bit-identity of DESIGN.md §6i). Thread-safe: the df
/// table uses sharded mutexes, the maximum is a CAS-bumped atomic.
struct SharedScoringState {
  DocumentFrequencyTable df;
  std::atomic<std::uint64_t> max_pop{0};

  void BumpMaxPop(std::uint64_t count) {
    std::uint64_t prev = max_pop.load(std::memory_order_relaxed);
    while (count > prev && !max_pop.compare_exchange_weak(
                               prev, count, std::memory_order_relaxed)) {
    }
  }
};

class RtsiIndex : public SearchIndex {
 public:
  explicit RtsiIndex(const RtsiConfig& config);

  /// Drains the background merge executor (if async_merge is on).
  ~RtsiIndex() override;

  /// Blocks until no merge is pending or running (async mode; no-op in
  /// synchronous mode). Benches call this to sequence phases.
  void WaitForMerges();

  /// Changes the query parallelism degree (see RtsiConfig::query_threads),
  /// growing or shrinking the worker pool to match (shrinking drains
  /// in-flight tasks, joins the excess workers, and releases the now-spare
  /// scratch buffers). NOT safe concurrently with queries; meant for
  /// benches that sweep thread counts on one built index instead of
  /// rebuilding it per setting.
  void SetQueryThreads(int query_threads);

  /// Toggles upper-bound pruning (RtsiConfig::use_bound). With pruning off
  /// every sealed component is walked to exhaustion; tests compare that
  /// full walk against the pruned walk to certify bound soundness. NOT
  /// safe concurrently with queries.
  void SetUseBound(bool use_bound);

  /// Toggles skip-header consultation (RtsiConfig::use_skip_header): the
  /// per-component term Bloom filter, summary-based bounds, and the
  /// candidate admission screen. Results are bit-identical either way
  /// (see DESIGN.md §6f); benches A/B the two settings. NOT safe
  /// concurrently with queries.
  void SetUseSkipHeader(bool use_skip_header);

  /// Switches the LSM compaction policy; takes effect at the next merge
  /// cascade. Always safe: policies are stateless and re-plan from the
  /// current per-level run lists, so any structure the previous policy
  /// (or a restored snapshot) left behind is valid input.
  void SetMergePolicy(lsm::MergePolicy policy);

  /// Binds the shard-global scoring state: queries then compute idf and
  /// the popularity normalizer from `shared` instead of this index's own
  /// tables, and every insert / popularity update is folded into it (in
  /// addition to the shard-local tables, which stay authoritative for
  /// snapshots). Pass nullptr to unbind. NOT safe concurrently with
  /// operations — bind at shard construction, before traffic.
  void BindSharedScoring(std::shared_ptr<SharedScoringState> shared);

  const SharedScoringState* shared_scoring() const {
    return shared_scoring_.get();
  }

  /// Installs an observer invoked after every published cascade step (the
  /// L0 freeze and each merge swap) with no tree locks held — the tree is
  /// consistent and snapshot-safe at each call. Tests use it to save
  /// snapshots mid-cascade. Pass nullptr to clear. NOT safe concurrently
  /// with running merges (set it before inserting past delta).
  void SetCascadeObserver(std::function<void()> observer);

  // SearchIndex:
  void InsertWindow(StreamId stream, Timestamp now,
                    const std::vector<TermCount>& terms, bool live) override;
  void FinishStream(StreamId stream) override;
  void DeleteStream(StreamId stream) override;
  void UpdatePopularity(StreamId stream, std::uint64_t delta) override;
  std::vector<ScoredStream> Query(const std::vector<TermId>& terms, int k,
                                  Timestamp now, QueryStats* stats) override;
  using SearchIndex::Query;

  /// Top-k search restricted by `filter` (e.g. live streams only — the
  /// "search live broadcasts" product feature).
  std::vector<ScoredStream> QueryFiltered(const std::vector<TermId>& terms,
                                          int k, Timestamp now,
                                          const QueryFilter& filter,
                                          QueryStats* stats = nullptr);

  /// Answers the query and explains it: candidate sources, per-component
  /// bounds and prune decisions, and per-result score decompositions.
  QueryExplanation ExplainQuery(const std::vector<TermId>& terms, int k,
                                Timestamp now,
                                const QueryFilter& filter = QueryFilter{});

  /// Builds (but does not run) the execution plan Query would use for
  /// these inputs: deduplicated terms, idfs from the bound scoring state,
  /// the capture-once popularity normalizer, and the pruning regime. The
  /// plan is immutable and re-enterable — standing queries hold one and
  /// re-execute it as the index advances; fuzzy expansion rewrites the
  /// term list before building.
  exec::QueryPlan BuildPlan(const std::vector<TermId>& terms, int k,
                            Timestamp now,
                            const QueryFilter& filter = QueryFilter{}) const;

  /// Runs a prepared plan through the sequential pipeline into a
  /// caller-supplied sink (the standing-query seam; Query/QueryFiltered
  /// are this with a TopKSink, plus the parallel executor when
  /// configured). The sink keeps its prior contents — re-executions can
  /// accumulate — and the returned vector is its current rank order.
  std::vector<ScoredStream> ExecutePlan(const exec::QueryPlan& plan,
                                        exec::ResultSink& sink,
                                        QueryStats* stats = nullptr);
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "RTSI"; }

  // Introspection for tests and benches.
  const lsm::LsmTree& tree() const { return tree_; }
  const index::StreamInfoTable& stream_table() const { return streams_; }
  const index::LiveTermTable& live_table() const { return live_terms_; }
  const DocumentFrequencyTable& doc_freq() const { return df_; }
  const RtsiConfig& config() const { return config_; }
  lsm::MergeStats GetMergeStats() const { return tree_.GetMergeStats(); }

  /// Cumulative skip-planner counters across the index's lifetime
  /// (rtsi_cli stats; monotone, updated once per query).
  struct SkipCounters {
    std::uint64_t components_visited = 0;
    std::uint64_t components_pruned = 0;
    std::uint64_t components_skipped = 0;
    std::uint64_t bloom_false_positives = 0;
    std::uint64_t candidates_screened = 0;
  };
  /// Aggregate WindowArena counters across the live ingest path: the L0
  /// shard arenas plus the live-term table's shard arenas (zeroed struct
  /// when use_arena is off). Benches derive allocations-per-insert from
  /// the request counters; rtsi_cli stats prints the byte gauges.
  WindowArena::Stats LiveArenaStats() const {
    WindowArena::Stats s = tree_.ArenaStats();
    s += live_terms_.ArenaStats();
    return s;
  }

  SkipCounters GetSkipCounters() const {
    SkipCounters c;
    c.components_visited = cum_visited_.load(std::memory_order_relaxed);
    c.components_pruned = cum_pruned_.load(std::memory_order_relaxed);
    c.components_skipped = cum_skipped_.load(std::memory_order_relaxed);
    c.bloom_false_positives =
        cum_bloom_fp_.load(std::memory_order_relaxed);
    c.candidates_screened =
        cum_screened_.load(std::memory_order_relaxed);
    return c;
  }

  // Mutable access for the snapshot-restore path only
  // (storage/snapshot.h); not part of the public indexing API.
  lsm::LsmTree& mutable_tree() { return tree_; }
  index::StreamInfoTable& mutable_stream_table() { return streams_; }
  index::LiveTermTable& mutable_live_table() { return live_terms_; }
  DocumentFrequencyTable& mutable_doc_freq() { return df_; }

 private:
  lsm::MergeHooks MakeMergeHooks();

  /// Evicts finished, now-consolidated streams from the live-term table
  /// (queued by FinishStream while their postings were still in L0).
  void DrainPendingFinished();

  /// Shared implementation behind Query / QueryFiltered / ExplainQuery.
  std::vector<ScoredStream> QueryImpl(const std::vector<TermId>& terms,
                                      int k, Timestamp now,
                                      const QueryFilter& filter,
                                      QueryStats* stats,
                                      QueryExplanation* explain);

  /// The sequential fast-path pipeline (phases 1-3) into `sink`; the
  /// common body of ExecutePlan and the non-executor Query path.
  void RunSequential(const exec::QueryPlan& plan, exec::ResultSink& sink,
                     QueryScratch& scratch, QueryStats& qs);

  RtsiConfig config_;
  Scorer scorer_;
  lsm::LsmTree tree_;
  index::StreamInfoTable streams_;
  index::LiveTermTable live_terms_;
  DocumentFrequencyTable df_;
  // Shard-global scoring aggregate (null outside sharded deployments).
  std::shared_ptr<SharedScoringState> shared_scoring_;
  std::mutex pending_mu_;
  std::unordered_set<StreamId> pending_finished_;
  // Test seam: forwarded into MergeHooks::on_cascade_step at each merge.
  std::function<void()> cascade_observer_;
  std::atomic<bool> merge_scheduled_{false};
  // Lifetime skip-planner counters (relaxed: statistics only).
  std::atomic<std::uint64_t> cum_visited_{0};
  std::atomic<std::uint64_t> cum_pruned_{0};
  std::atomic<std::uint64_t> cum_skipped_{0};
  std::atomic<std::uint64_t> cum_bloom_fp_{0};
  std::atomic<std::uint64_t> cum_screened_{0};
  // Recycled query buffers; queries lease one scratch per executing
  // thread so the scoring hot path never allocates in steady state.
  mutable ScratchPool scratch_pool_;
  // Declared last: destroyed first, draining queued merges / in-flight
  // query tasks while the members above are still alive.
  std::unique_ptr<ThreadPool> merge_executor_;
  // Workers for the parallel query executor (query_threads - 1 threads;
  // the querying thread itself is the remaining worker). Null when
  // query_threads <= 1. Shared by all concurrent queries of this index.
  std::unique_ptr<ThreadPool> query_pool_;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_RTSI_INDEX_H_
