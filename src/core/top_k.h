// Bounded top-k result heap.

#ifndef RTSI_CORE_TOP_K_H_
#define RTSI_CORE_TOP_K_H_

#include <cstddef>
#include <queue>
#include <vector>

#include "core/search_index.h"

namespace rtsi::core {

/// Keeps the k highest-scoring streams offered to it. Offer() is O(log k);
/// ties are broken arbitrarily.
class TopKHeap {
 public:
  explicit TopKHeap(int k);

  void Offer(StreamId stream, double score);

  bool full() const { return heap_.size() >= k_; }
  std::size_t size() const { return heap_.size(); }

  /// Score of the current k-th (worst retained) result;
  /// -infinity while not full.
  double KthScore() const;

  /// Results sorted by descending score.
  std::vector<ScoredStream> SortedResults() const;

 private:
  struct MinFirst {
    bool operator()(const ScoredStream& a, const ScoredStream& b) const {
      return a.score > b.score;
    }
  };

  std::size_t k_;
  std::priority_queue<ScoredStream, std::vector<ScoredStream>, MinFirst>
      heap_;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_TOP_K_H_
