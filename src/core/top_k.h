// Bounded top-k result heaps: the single-threaded TopKHeap and the
// SharedTopK used by the parallel query executor.
//
// Both break ties deterministically: results are ordered by (score
// descending, stream id ascending). The total order makes the retained
// top-k independent of the order candidates were offered in, which is what
// lets the parallel executor produce bit-identical results to the
// sequential query path.

#ifndef RTSI_CORE_TOP_K_H_
#define RTSI_CORE_TOP_K_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/search_index.h"

namespace rtsi::core {

/// Keeps the k highest-scoring *distinct* streams offered to it. Offer()
/// is O(log k); ties are broken by stream id (lower wins), so the retained
/// set does not depend on offer order. Re-offering a retained stream keeps
/// only its better-ranked score: a stream whose postings transiently span
/// several sealed components is scored once per component, and both query
/// paths must deterministically keep the same (best) partial score.
class TopKHeap {
 public:
  explicit TopKHeap(int k);

  void Offer(StreamId stream, double score);

  bool full() const { return entries_.size() >= k_; }
  std::size_t size() const { return entries_.size(); }

  /// Score of the current k-th (worst retained) result;
  /// -infinity while not full.
  double KthScore() const;

  /// Results sorted by descending score, ascending stream id on ties.
  std::vector<ScoredStream> SortedResults() const;

  /// Total result order: true when `a` ranks strictly above `b`.
  static bool RanksAbove(const ScoredStream& a, const ScoredStream& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.stream < b.stream;
  }

 private:
  struct BestFirst {
    bool operator()(const ScoredStream& a, const ScoredStream& b) const {
      return RanksAbove(a, b);
    }
  };

  std::size_t k_;
  // Retained results in rank order plus a stream -> score index for the
  // keep-best-per-stream upsert; both hold at most k entries.
  std::set<ScoredStream, BestFirst> entries_;
  std::unordered_map<StreamId, double> index_;
};

/// Thread-safe top-k accumulator for the parallel query executor: a
/// mutex-guarded TopKHeap plus a lock-free published k-th score that
/// workers read for cooperative pruning.
///
/// The published threshold is monotone non-decreasing and is always the
/// minimum score of k real (distinct within a worker) candidates, hence a
/// valid lower bound on the final k-th score: pruning any component whose
/// upper bound is *strictly below* it can never change the result set.
class SharedTopK {
 public:
  explicit SharedTopK(int k);

  /// Thread-safe offer. Candidates strictly below the published threshold
  /// are rejected without taking the lock.
  void Offer(StreamId stream, double score);

  /// Lower bound on the final k-th score (-infinity until k candidates
  /// were offered). Lock-free; safe to read concurrently with Offer().
  double ThresholdScore() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  std::size_t size() const;

  /// Results sorted by descending score, ascending stream id on ties.
  std::vector<ScoredStream> SortedResults() const;

 private:
  mutable std::mutex mu_;
  TopKHeap heap_;
  std::atomic<double> threshold_;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_TOP_K_H_
