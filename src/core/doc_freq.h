// Document-frequency table for IDF: term -> number of streams containing
// it, plus the total stream count. Sharded for concurrent inserts.

#ifndef RTSI_CORE_DOC_FREQ_H_
#define RTSI_CORE_DOC_FREQ_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/types.h"

namespace rtsi::core {

class DocumentFrequencyTable {
 public:
  DocumentFrequencyTable() = default;

  DocumentFrequencyTable(const DocumentFrequencyTable&) = delete;
  DocumentFrequencyTable& operator=(const DocumentFrequencyTable&) = delete;

  /// One more stream contains `term`.
  void AddOccurrence(TermId term);

  /// Adds `delta` streams containing `term` in one step. Shard-aggregate
  /// rebuild path (shard::IndexShardSet sums per-shard tables into the
  /// shared scoring state after a restore).
  void AddCount(TermId term, std::uint64_t delta);

  /// One more stream exists (IDF denominator).
  void AddDocument() {
    num_documents_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t DocumentFrequency(TermId term) const;
  std::uint64_t num_documents() const {
    return num_documents_.load(std::memory_order_relaxed);
  }

  /// Smoothed IDF: log(1 + N / (1 + df)).
  double Idf(TermId term) const;

  std::size_t MemoryBytes() const;

  /// Calls fn(TermId, df) for every entry. Snapshot save path.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [term, df] : shard.df) {
        fn(term, df);
      }
    }
  }

  /// Installs a raw entry / document count. Snapshot restore path.
  void RestoreEntry(TermId term, std::uint64_t df);
  void SetNumDocuments(std::uint64_t n) {
    num_documents_.store(n, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kNumShards = 64;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<TermId, std::uint64_t> df;
  };

  Shard shards_[kNumShards];
  std::atomic<std::uint64_t> num_documents_{0};
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_DOC_FREQ_H_
