#include "core/doc_freq.h"

#include <cmath>

namespace rtsi::core {

void DocumentFrequencyTable::AddOccurrence(TermId term) {
  Shard& shard = shards_[term % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.df[term];
}

void DocumentFrequencyTable::AddCount(TermId term, std::uint64_t delta) {
  Shard& shard = shards_[term % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.df[term] += delta;
}

void DocumentFrequencyTable::RestoreEntry(TermId term, std::uint64_t df) {
  Shard& shard = shards_[term % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.df[term] = df;
}

std::uint64_t DocumentFrequencyTable::DocumentFrequency(TermId term) const {
  const Shard& shard = shards_[term % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.df.find(term);
  return it == shard.df.end() ? 0 : it->second;
}

double DocumentFrequencyTable::Idf(TermId term) const {
  const double n = static_cast<double>(num_documents());
  const double df = static_cast<double>(DocumentFrequency(term));
  return std::log1p(n / (1.0 + df));
}

std::size_t DocumentFrequencyTable::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.df.bucket_count() * sizeof(void*) +
             shard.df.size() * (sizeof(TermId) + sizeof(std::uint64_t) +
                                2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace rtsi::core
