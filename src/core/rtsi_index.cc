#include "core/rtsi_index.h"

#include <algorithm>
#include <cstdint>
#include <atomic>
#include <cmath>
#include <limits>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "core/query_util.h"
#include "core/top_k.h"

namespace rtsi::core {

using index::Posting;
using index::StreamInfo;
using index::TermPostings;

namespace {

// The single arena switch lives on RtsiConfig; mirror it into the LSM
// config before the tree is constructed from it.
RtsiConfig Normalized(RtsiConfig config) {
  config.lsm.use_arena = config.use_arena;
  return config;
}

}  // namespace

RtsiIndex::RtsiIndex(const RtsiConfig& config)
    : config_(Normalized(config)),
      scorer_(config.weights, config.freshness_tau_seconds),
      tree_(config_.lsm),
      live_terms_(config_.use_arena, tree_.memory_tracker()) {
  if (config.async_merge) {
    merge_executor_ = std::make_unique<ThreadPool>(1);
  }
  if (config.query_threads > 1) {
    // The querying thread is one worker of the executor; the pool supplies
    // the other query_threads - 1.
    query_pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(config.query_threads) - 1);
  }
}

RtsiIndex::~RtsiIndex() { WaitForMerges(); }

void RtsiIndex::SetQueryThreads(int query_threads) {
  config_.query_threads = query_threads < 0 ? 0 : query_threads;
  const auto want = static_cast<std::size_t>(
      config_.query_threads > 1 ? config_.query_threads - 1 : 0);
  const std::size_t have =
      query_pool_ != nullptr ? query_pool_->num_threads() : 0;
  if (want == have) return;
  if (query_pool_ != nullptr) {
    // Drain in-flight tasks; with no concurrent queries (the caller's
    // contract) every scratch lease has been returned to the pool once
    // Wait() returns, so the excess workers can be joined safely.
    query_pool_->Wait();
  }
  query_pool_ = want > 0 ? std::make_unique<ThreadPool>(want) : nullptr;
  // Steady state needs one scratch per executing thread (workers plus the
  // querying thread); release the rest so memory tracks the new degree.
  scratch_pool_.TrimTo(want + 1);
}

void RtsiIndex::SetUseBound(bool use_bound) {
  config_.use_bound = use_bound;
}

void RtsiIndex::SetUseSkipHeader(bool use_skip_header) {
  config_.use_skip_header = use_skip_header;
}

void RtsiIndex::SetMergePolicy(lsm::MergePolicy policy) {
  config_.lsm.policy = policy;
  tree_.SetPolicy(policy);
}

void RtsiIndex::SetCascadeObserver(std::function<void()> observer) {
  cascade_observer_ = std::move(observer);
}

void RtsiIndex::BindSharedScoring(
    std::shared_ptr<SharedScoringState> shared) {
  shared_scoring_ = std::move(shared);
  if (shared_scoring_ != nullptr) {
    // A shard that already holds state (snapshot restore, journal replay)
    // contributes its current maximum; the df aggregate is rebuilt by the
    // shard set, which sums every shard's table.
    shared_scoring_->BumpMaxPop(streams_.max_pop_count());
  }
}

void RtsiIndex::WaitForMerges() {
  if (merge_executor_ != nullptr) merge_executor_->Wait();
}

lsm::MergeHooks RtsiIndex::MakeMergeHooks() {
  lsm::MergeHooks hooks;
  hooks.is_deleted = [this](StreamId stream) {
    return streams_.IsDeleted(stream);
  };
  hooks.on_purged = [this](StreamId stream) {
    live_terms_.RemoveStream(stream);
  };
  hooks.on_stream = [this](StreamId stream, std::uint32_t copies,
                           const index::InvertedIndex& merged) {
    // Register the stream on the (unpublished) merge output — its live
    // freshness bumps the output's ceiling cell on the way. The input
    // residencies stay until on_retired fires post-swap, so inserts keep
    // bumping the still-query-visible inputs' ceilings. When the merge
    // consolidated several of this stream's residencies into one and the
    // stream stopped broadcasting, the per-component tf is the total and
    // the live-term entries can go.
    const auto [count, live] = streams_.MergeResidency(
        stream, copies, merged.component_id(), merged.ceiling_cell());
    if (copies > 1 && count <= 1 && !live) live_terms_.RemoveStream(stream);
  };
  hooks.on_retired = [this](StreamId stream,
                            const std::vector<ComponentId>& from) {
    // The merge inputs left the component list: their ceiling cells can
    // no longer reach a query, so the residency entries go.
    streams_.DropResidency(stream, from);
  };
  hooks.on_cascade_step = cascade_observer_;
  hooks.on_frozen = [this](const index::InvertedIndex& frozen) {
    // A new sealed component is about to become query-visible: register a
    // residency (stream -> ceiling cell) for every distinct stream it
    // holds, from the frozen postings themselves, so the set is exact
    // whatever racing freezes did to the L0 epochs.
    std::unordered_set<StreamId> streams;
    frozen.ForEachTerm([&](TermId, const TermPostings& postings) {
      for (const Posting& p : postings.entries()) streams.insert(p.stream);
    });
    for (const StreamId stream : streams) {
      streams_.AddSealedResidency(stream, frozen.component_id(),
                                  frozen.ceiling_cell());
    }
  };
  return hooks;
}

void RtsiIndex::DrainPendingFinished() {
  std::vector<StreamId> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_finished_.empty()) return;
    pending.assign(pending_finished_.begin(), pending_finished_.end());
    pending_finished_.clear();
  }
  // These streams finished with all postings in L0; the cascade that just
  // ran consolidated them into a single sealed component.
  for (const StreamId stream : pending) {
    if (streams_.GetComponentCount(stream) <= 1 &&
        !tree_.StreamInL0(stream)) {
      live_terms_.RemoveStream(stream);
    }
  }
}

void RtsiIndex::InsertWindow(StreamId stream, Timestamp now,
                             const std::vector<TermCount>& terms, bool live) {
  // Algorithm 1. Lines 1-3: append to I0's lists and update hash tables.
  std::uint64_t pop_count = 0;
  const bool new_stream = streams_.OnInsert(stream, now, live, &pop_count);
  if (new_stream) {
    df_.AddDocument();
    if (shared_scoring_ != nullptr) shared_scoring_->df.AddDocument();
  }
  const float pop_snapshot = static_cast<float>(pop_count);

  const std::vector<TermFreq> totals = live_terms_.AddWindow(stream, terms);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const TermCount& tc = terms[i];
    if (tc.tf == 0) continue;
    if (totals[i] == tc.tf) {  // First window holding this term.
      df_.AddOccurrence(tc.term);
      if (shared_scoring_ != nullptr) {
        shared_scoring_->df.AddOccurrence(tc.term);
      }
    }
    // AddPosting marks the stream's L0-epoch presence atomically with the
    // posting (under the term-shard lock), returning true on the stream's
    // first posting of the epoch. Incrementing per true return — instead
    // of one up-front MarkStreamInL0 — closes the race where a freeze
    // slipped between the mark and the adds and left the component count
    // short for the new epoch; a freeze splitting this window's postings
    // across two epochs now yields the correct two increments.
    if (tree_.AddPosting(tc.term, Posting{stream, pop_snapshot, now, tc.tf})) {
      streams_.IncrementComponentCount(stream);
    }
  }

  // Lines 4-7: merge cascade when I0 exceeds delta. With async_merge the
  // cascade runs on the background executor and insertion latency stays
  // flat; epoch-published views keep queries exact either way.
  if (tree_.NeedsMerge()) {
    if (merge_executor_ == nullptr) {
      tree_.MergeCascade(MakeMergeHooks());
      DrainPendingFinished();
    } else if (!merge_scheduled_.exchange(true)) {
      merge_executor_->Submit([this] {
        merge_scheduled_.store(false);
        tree_.MergeCascade(MakeMergeHooks());
        DrainPendingFinished();
      });
    }
  }
}

void RtsiIndex::FinishStream(StreamId stream) {
  streams_.MarkFinished(stream);
  if (streams_.GetComponentCount(stream) <= 1) {
    if (!tree_.StreamInL0(stream)) {
      live_terms_.RemoveStream(stream);
    } else {
      // Still has (possibly duplicate) postings in L0; evict from the
      // live-term table after the next merge consolidates them.
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_finished_.insert(stream);
    }
  }
  // Streams spanning several components are evicted by the merge hook
  // once consolidation brings them down to one residency.
}

void RtsiIndex::DeleteStream(StreamId stream) {
  streams_.MarkDeleted(stream);  // Lazy: postings purged at merges.
  live_terms_.RemoveStream(stream);
}

void RtsiIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  // The RTSI update path touches only the small per-stream table; the
  // popularity snapshots inside sealed lists stay as-is (the bound mode
  // decides how to stay conservative).
  const std::uint64_t count = streams_.AddPopularity(stream, delta);
  if (shared_scoring_ != nullptr) shared_scoring_->BumpMaxPop(count);
}

std::vector<ScoredStream> RtsiIndex::Query(const std::vector<TermId>& terms,
                                           int k, Timestamp now,
                                           QueryStats* stats) {
  return QueryImpl(terms, k, now, QueryFilter{}, stats, nullptr);
}

std::vector<ScoredStream> RtsiIndex::QueryFiltered(
    const std::vector<TermId>& terms, int k, Timestamp now,
    const QueryFilter& filter, QueryStats* stats) {
  return QueryImpl(terms, k, now, filter, stats, nullptr);
}

QueryExplanation RtsiIndex::ExplainQuery(const std::vector<TermId>& terms,
                                         int k, Timestamp now,
                                         const QueryFilter& filter) {
  QueryExplanation explanation;
  QueryImpl(terms, k, now, filter, nullptr, &explanation);
  return explanation;
}

std::vector<ScoredStream> RtsiIndex::QueryImpl(
    const std::vector<TermId>& terms, int k, Timestamp now,
    const QueryFilter& filter, QueryStats* stats,
    QueryExplanation* explain) {
  // Diagnostics accumulate in a local and are published once on exit, so
  // the per-candidate increments never write through the caller's pointer.
  QueryStats qs;

  ScratchLease lease(scratch_pool_);
  QueryScratch& scratch = *lease;

  // Deduplicate query terms preserving first-seen order. Membership goes
  // through a sorted flat set: queries hold a handful of terms, so binary
  // search in a contiguous vector beats both hashing and a quadratic scan.
  std::vector<TermId>& q = scratch.q;
  std::vector<TermId>& term_set = scratch.term_set;
  q.reserve(terms.size());
  term_set.reserve(terms.size());
  for (const TermId term : terms) {
    const auto it =
        std::lower_bound(term_set.begin(), term_set.end(), term);
    if (it != term_set.end() && *it == term) continue;
    term_set.insert(it, term);
    q.push_back(term);
  }
  if (explain != nullptr) {
    explain->terms = q;
    explain->k = k;
    explain->now = now;
  }
  if (q.empty() || k <= 0) {
    if (stats != nullptr) *stats = qs;
    return {};
  }
  const std::size_t nq = q.size();
  const int num_terms = static_cast<int>(nq);

  // Sharded deployments score with the corpus-global statistics so every
  // shard computes exactly the score a single unsharded index would; the
  // shard-local tables are a subset (df) / lower bound (max pop) of the
  // aggregate, so the max() only ever picks the shared value — it guards
  // against an aggregate that was bound but not yet refreshed.
  const DocumentFrequencyTable& df =
      shared_scoring_ != nullptr ? shared_scoring_->df : df_;
  std::vector<double>& idfs = scratch.idfs;
  idfs.assign(nq, 0.0);
  for (std::size_t i = 0; i < nq; ++i) idfs[i] = df.Idf(q[i]);
  if (explain != nullptr) explain->idfs = idfs;
  const std::uint64_t max_pop =
      shared_scoring_ != nullptr
          ? std::max(shared_scoring_->max_pop.load(std::memory_order_relaxed),
                     streams_.max_pop_count())
          : streams_.max_pop_count();

  // The parallel executor handles every query when query_threads >= 1,
  // except explanations, which keep the sequential walk's deterministic
  // per-component bookkeeping. Results are bit-identical either way:
  // scores are order-independent, the heaps break ties totally, and
  // pruning only ever drops candidates strictly below the k-th score.
  const bool use_executor = config_.query_threads > 0 && explain == nullptr;
  // Whenever the executor is enabled (including its sequential explain
  // fallback, which must return the same results), pruning uses the
  // kGlobalPop ceilings. kSnapshot bounds go stale when popularity or
  // freshness updates land after a component seals, which makes pruning
  // decisions depend on traversal timing — sound ceilings are what turn
  // the executor's bit-identity into a theorem instead of a race.
  const BoundMode bound_mode = config_.query_threads > 0
                                   ? BoundMode::kGlobalPop
                                   : config_.bound_mode;
  TopKHeap heap(k);
  SharedTopK shared(k);
  const auto offer = [&](StreamId stream, double score) {
    if (use_executor) {
      shared.Offer(stream, score);
    } else {
      heap.Offer(stream, score);
    }
  };

  std::unordered_set<StreamId> scored;
  std::unordered_map<StreamId, ScoreBreakdown> breakdowns;

  // Pure Equation-1 scoring from the tf-idf sum; false when the stream is
  // deleted/unknown or rejected by the filter. Safe to call from any
  // worker (sharded-mutex table reads, const scorer).
  struct PartScores {
    double pop = 0.0, rel = 0.0, frsh = 0.0, total = 0.0;
  };
  const auto compute_score = [&](StreamId stream, double tfidf_sum,
                                 PartScores& out) {
    StreamInfo info;
    if (!streams_.Get(stream, info)) return false;  // Deleted or unknown.
    if (filter.live_only && !info.live) return false;
    if (info.frsh < filter.min_frsh) return false;
    out.pop = scorer_.PopScore(info.pop_count, max_pop);
    out.rel = scorer_.RelScore(tfidf_sum, num_terms);
    out.frsh = scorer_.FrshScore(info.frsh, now);
    out.total = scorer_.Combine(out.pop, out.rel, out.frsh);
    return true;
  };

  // Scoring wrapper for the phases that run on the querying thread only
  // (it touches qs and the explain breakdowns).
  const auto score_candidate = [&](StreamId stream, double tfidf_sum,
                                   ScoreBreakdown::Source source,
                                   const TermFreq* tfs) {
    PartScores parts;
    if (!compute_score(stream, tfidf_sum, parts)) return;
    offer(stream, parts.total);
    ++qs.candidates_scored;
    if (explain != nullptr) {
      // A stream scored in several components keeps the breakdown of its
      // better-ranked (retained) scoring.
      const auto it = breakdowns.find(stream);
      if (it != breakdowns.end() &&
          !TopKHeap::RanksAbove({stream, parts.total},
                                {stream, it->second.total})) {
        return;
      }
      ScoreBreakdown breakdown;
      breakdown.stream = stream;
      breakdown.pop_score = parts.pop;
      breakdown.rel_score = parts.rel;
      breakdown.frsh_score = parts.frsh;
      breakdown.total = parts.total;
      breakdown.source = source;
      if (tfs != nullptr) breakdown.term_tfs.assign(tfs, tfs + nq);
      breakdowns[stream] = std::move(breakdown);
    }
  };

  // Phase 1: score every live-table stream touching a query term (the
  // table is term-keyed, so only matching streams are visited). Their
  // totals are exact regardless of how many components hold their
  // postings; afterwards, any unscored candidate is single-component.
  std::vector<StreamId>& table_matches = scratch.table_matches;
  for (const TermId term : q) {
    live_terms_.ForEachStreamOfTerm(term, [&](StreamId stream, TermFreq) {
      table_matches.push_back(stream);
    });
  }
  std::vector<TermFreq>& tfs = scratch.tfs;
  for (const StreamId stream : table_matches) {
    if (!scored.insert(stream).second) continue;
    double tfidf_sum = 0.0;
    tfs.assign(nq, 0);
    for (std::size_t i = 0; i < nq; ++i) {
      tfs[i] = live_terms_.GetTotal(stream, q[i]);
      tfidf_sum += scorer_.TermTfIdf(tfs[i], idfs[i]);
    }
    score_candidate(stream, tfidf_sum, ScoreBreakdown::Source::kLiveTable,
                    tfs.data());
  }
  if (explain != nullptr) {
    explain->live_table_candidates = scored.size();
  }

  // Phase 2: full scan of I0 (it is small by construction). Accumulates
  // per-stream tf sums into a slot-indexed flat matrix (stride nq), exact
  // for streams whose postings are L0-only.
  auto& l0_slot = scratch.l0_slot;
  auto& l0_tf = scratch.l0_tf;
  auto& l0_streams = scratch.l0_streams;
  for (std::size_t i = 0; i < nq; ++i) {
    tree_.WithL0Term(q[i], [&](const TermPostings* postings) {
      if (postings == nullptr) return;
      qs.postings_scanned += postings->size();
      for (const Posting& p : postings->entries()) {
        auto [it, inserted] = l0_slot.try_emplace(
            p.stream, static_cast<std::uint32_t>(l0_streams.size()));
        if (inserted) {
          l0_streams.push_back(p.stream);
          l0_tf.resize(l0_tf.size() + nq, 0);
        }
        l0_tf[static_cast<std::size_t>(it->second) * nq + i] += p.tf;
      }
    });
  }
  std::size_t l0_candidates = 0;
  for (std::size_t slot = 0; slot < l0_streams.size(); ++slot) {
    const StreamId stream = l0_streams[slot];
    if (!scored.insert(stream).second) continue;
    const TermFreq* stream_tfs = l0_tf.data() + slot * nq;
    double tfidf_sum = 0.0;
    for (std::size_t i = 0; i < nq; ++i) {
      tfidf_sum += scorer_.TermTfIdf(stream_tfs[i], idfs[i]);
    }
    ++l0_candidates;
    score_candidate(stream, tfidf_sum, ScoreBreakdown::Source::kL0Scan,
                    stream_tfs);
  }
  if (explain != nullptr) explain->l0_candidates = l0_candidates;

  // Phase 3: sealed components, best upper bound first (Algorithm 3's
  // sc-top pruning, strengthened by processing in bound order). From here
  // on `scored` is read-only in both paths: it marks the phase-1/2
  // streams whose totals are already exact. A stream whose postings
  // transiently span several sealed components (sealed at different
  // times, not yet consolidated by a merge) is scored once per component
  // with that component's partial tfs; the keep-best-per-stream heap
  // retains its highest partial deterministically, so sequential and
  // parallel traversal agree bit-for-bit.
  //
  // The query pins ONE immutable view here — a single atomic load — and
  // every worker traverses that view: no locks, no structure re-checks,
  // no mirror lookups. Merges publishing mid-query cannot perturb the
  // pinned component set, and pre-merge components stay alive because
  // the pin references them.
  const lsm::IndexViewPtr view = tree_.PinView();
  const auto& snapshot = view->components;
  struct RankedComponent {
    const index::InvertedIndex* component;
    double bound;
    Timestamp frsh_ceiling;  // Live-freshness ceiling captured at ranking
                             // time (same capture-once semantics as
                             // max_pop, so all workers agree).
    double rel_total;   // Screen: bound on this component's rel part.
    std::size_t order;  // Snapshot position: deterministic sort tie-break
                        // and the component's screen_tfidf row.
    std::size_t explain_slot;
    bool screen;        // Header summaries available for screening.
  };
  // Planner over the pinned view. With a skip header the per-term lookups
  // go through the Bloom filter + summary array instead of the posting
  // hash maps; a component whose header proves every query term absent is
  // dropped here without ever constructing a traversal. Summary bounds
  // are >= the posting-map bounds by construction (the aggregated
  // per-stream tf maximum), so switching lookups never tightens a bound
  // — pruning stays lossless.
  const bool consult_headers = config_.use_skip_header;
  std::vector<double>& screen_tfidf = scratch.screen_tfidf;
  screen_tfidf.assign(snapshot.size() * nq, 0.0);
  std::vector<double>& screen_own = scratch.screen_own;
  std::vector<RankedComponent> ranked;
  ranked.reserve(snapshot.size());
  std::vector<PerTermBound>& per_term = scratch.per_term;
  for (std::size_t ci = 0; ci < snapshot.size(); ++ci) {
    const auto& component = snapshot[ci];
    const index::SkipHeader* header =
        consult_headers ? component->skip_header() : nullptr;
    per_term.assign(nq, PerTermBound{});
    bool any_present = false;
    if (header != nullptr) {
      for (std::size_t i = 0; i < nq; ++i) {
        per_term[i].idf = idfs[i];
        per_term[i].tf_correction = 0;  // Consolidation invariant.
        if (!header->MayContain(q[i])) continue;
        const index::TermSummary* s = header->Find(q[i]);
        if (s == nullptr) {
          ++qs.bloom_false_positives;  // Cost: one binary search. Sound.
          continue;
        }
        per_term[i].bounds =
            index::TermBounds{s->max_pop, s->max_frsh, s->max_tf, true};
        any_present = true;
      }
    } else {
      for (std::size_t i = 0; i < nq; ++i) {
        per_term[i].bounds = component->Bounds(q[i]);
        per_term[i].idf = idfs[i];
        per_term[i].tf_correction = 0;  // Consolidation invariant.
        any_present = any_present || per_term[i].bounds.present;
      }
    }
    // Per-component ceiling: only streams resident here can have raised
    // it, so it is far tighter than the table-global max_frsh() — which
    // stays the sound fallback for components without a cell (restored
    // from old snapshots, or built by tests via bare CombineComponents).
    const Timestamp frsh_ceiling = component->has_ceiling()
                                       ? component->LiveFrshCeiling()
                                       : streams_.max_frsh();
    const double bound = ComponentBound(scorer_, per_term, now, max_pop,
                                        frsh_ceiling, bound_mode);
    std::size_t slot = 0;
    if (explain != nullptr) {
      ComponentExplanation ce;
      ce.level = component->level();
      ce.num_postings = component->num_postings();
      ce.upper_bound = bound;
      ce.skipped = header != nullptr && !any_present;
      slot = explain->components.size();
      explain->components.push_back(ce);
    }
    if (header != nullptr && !any_present) {
      // The Bloom filter *proved* every query term absent (a summary miss
      // after a positive filter is counted above, not here): the
      // component is skipped without touching its posting maps.
      ++qs.components_skipped;
      continue;
    }
    if (!(bound > 0.0)) continue;
    double rel_total = 0.0;
    if (header != nullptr) {
      // Admission-screen ingredients. own[i] bounds term i's tf-idf
      // contribution inside this component; the row of screen_tfidf
      // holds, per term, the mass the *other* terms can add (direct
      // ascending-order sums, matching the scoring loop's accumulation
      // order so the bound dominates the actual sum even under floating-
      // point rounding — a tiny slack at the compare covers the rest).
      screen_own.assign(nq, 0.0);
      for (std::size_t i = 0; i < nq; ++i) {
        if (per_term[i].bounds.present) {
          screen_own[i] = scorer_.TermTfIdf(per_term[i].bounds.max_tf,
                                            idfs[i]);
        }
      }
      double sum_own = 0.0;
      for (std::size_t i = 0; i < nq; ++i) sum_own += screen_own[i];
      double* other = screen_tfidf.data() + ci * nq;
      for (std::size_t i = 0; i < nq; ++i) {
        double o = 0.0;
        for (std::size_t j = 0; j < nq; ++j) {
          if (j != i) o += screen_own[j];
        }
        other[i] = o;
      }
      rel_total = scorer_.RelScore(sum_own, num_terms);
    }
    ranked.push_back({component.get(), bound, frsh_ceiling, rel_total, ci,
                      slot, header != nullptr});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedComponent& a, const RankedComponent& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.order < b.order;
            });

  // Admission screen (both paths): before a candidate pays for its
  // random-access term lookups, compare the current k-th score against a
  // sound upper bound built from its *live* popularity and freshness
  // (one stream-table read, needed for scoring anyway) and the header
  // summaries' relevance ceiling. The bound dominates the candidate's
  // exact score in every bound mode — live values are exact, the rel
  // ceiling only over-estimates — so a screened candidate could never
  // have entered the final top-k: results are bit-identical with the
  // screen on or off (DESIGN.md §6f). The slack absorbs the different
  // floating-point summation order of bound vs exact relevance.
  constexpr double kScreenSlack = 1e-9;
  const bool screen_base =
      config_.use_bound && consult_headers && explain == nullptr;

  const StreamId max_stream = streams_.max_stream_id();
  if (!use_executor) {
    std::vector<Posting>& round = scratch.round;
    std::vector<std::uint32_t>& round_terms = scratch.round_terms;
    StreamSeenFilter seen(scratch, max_stream);
    for (std::size_t c = 0; c < ranked.size(); ++c) {
      // Strictly-below pruning: a dropped candidate can never re-enter
      // via the stream-id tie-break, which keeps the result set identical
      // under any traversal order (and hence equal to the executor's).
      if (config_.use_bound && heap.KthScore() > ranked[c].bound) {
        qs.components_pruned += ranked.size() - c;
        qs.terminated_early = true;
        break;
      }
      ++qs.components_visited;
      if (explain != nullptr) {
        explain->components[ranked[c].explain_slot].visited = true;
      }
      const bool screen = screen_base && ranked[c].screen;
      const double rel_total = ranked[c].rel_total;
      const double* other_tfidf =
          screen_tfidf.data() + ranked[c].order * nq;
      ComponentTraversal traversal(*ranked[c].component, q);
      seen.NextComponent();
      while (traversal.NextRound(round, round_terms)) {
        for (std::size_t ri = 0; ri < round.size(); ++ri) {
          const Posting& p = round[ri];
          if (!seen.Insert(p.stream)) continue;
          if (scored.count(p.stream) > 0) continue;
          const std::size_t ti = round_terms[ri];
          if (explain == nullptr) {
            StreamInfo info;
            if (!streams_.Get(p.stream, info)) continue;  // Deleted.
            if (filter.live_only && !info.live) continue;
            if (info.frsh < filter.min_frsh) continue;
            const double pop_score =
                scorer_.PopScore(info.pop_count, max_pop);
            const double frsh_score = scorer_.FrshScore(info.frsh, now);
            if (screen &&
                heap.KthScore() >
                    scorer_.Combine(pop_score, rel_total, frsh_score) +
                        kScreenSlack) {
              ++qs.candidates_screened;  // No term lookup was paid.
              continue;
            }
            // The discovering term's aggregate first (one lookup the old
            // path repeated), then a tighter screen with its actual tf
            // before paying for the remaining terms.
            Posting agg;
            if (!traversal.Find(ti, p.stream, agg)) continue;
            double tfidf_sum = scorer_.TermTfIdf(agg.tf, idfs[ti]);
            if (screen && nq > 1 &&
                heap.KthScore() >
                    scorer_.Combine(
                        pop_score,
                        scorer_.RelScore(tfidf_sum + other_tfidf[ti],
                                         num_terms),
                        frsh_score) +
                        kScreenSlack) {
              ++qs.candidates_screened;
              continue;
            }
            for (std::size_t i = 0; i < nq; ++i) {
              if (i == ti) continue;
              Posting found;
              if (traversal.Find(i, p.stream, found)) {
                tfidf_sum += scorer_.TermTfIdf(found.tf, idfs[i]);
              }
            }
            const double rel_score =
                scorer_.RelScore(tfidf_sum, num_terms);
            offer(p.stream,
                  scorer_.Combine(pop_score, rel_score, frsh_score));
            ++qs.candidates_scored;
            continue;
          }
          // Explain path: full scoring with per-term breakdowns; same
          // discovering-term-first accumulation order as the fast path
          // so explained totals match Query() bit-for-bit.
          double tfidf_sum = 0.0;
          tfs.assign(nq, 0);
          Posting agg;
          if (traversal.Find(ti, p.stream, agg)) {
            tfs[ti] = agg.tf;
            tfidf_sum = scorer_.TermTfIdf(agg.tf, idfs[ti]);
          }
          for (std::size_t i = 0; i < nq; ++i) {
            if (i == ti) continue;
            Posting found;
            if (traversal.Find(i, p.stream, found)) {
              tfs[i] = found.tf;
              tfidf_sum += scorer_.TermTfIdf(found.tf, idfs[i]);
            }
          }
          score_candidate(p.stream, tfidf_sum,
                          ScoreBreakdown::Source::kSealedComponent,
                          tfs.data());
        }
        qs.postings_scanned += round.size();
        round.clear();
        round_terms.clear();
        if (config_.use_bound && heap.full()) {
          const double tau = traversal.Threshold(
              scorer_, idfs, now, max_pop, ranked[c].frsh_ceiling,
              bound_mode);
          if (heap.KthScore() > tau) {
            qs.terminated_early = true;
            if (explain != nullptr) {
              explain->components[ranked[c].explain_slot]
                  .terminated_early = true;
            }
            break;
          }
        }
      }
      if (explain != nullptr) {
        explain->components[ranked[c].explain_slot].postings_yielded =
            traversal.postings_yielded();
      }
    }
  } else if (!ranked.empty()) {
    // Parallel executor: workers claim work units off an atomic cursor
    // (so the best bounds are traversed first), publish their k-th score
    // through the SharedTopK, and prune cooperatively against it.
    //
    // A settled LSM concentrates most postings in the bottom component,
    // so component-granular fan-out alone is bounded by that straggler
    // (Amdahl at the component level). Large components are therefore
    // split into stream-sliced units: each slice re-runs the (cheap)
    // cursor scan of the whole component but only resolves tfs and
    // scores candidates whose stream id falls in its slice. Slices
    // partition the stream space, so every candidate is still scored by
    // exactly one worker and the bit-identity argument is untouched.
    struct WorkUnit {
      std::size_t comp;         // Index into `ranked`.
      std::uint32_t slice;
      std::uint32_t num_slices;
    };
    std::size_t ranked_postings = 0;
    for (const RankedComponent& rc : ranked) {
      ranked_postings += rc.component->num_postings();
    }
    const auto threads =
        static_cast<std::size_t>(config_.query_threads);
    std::vector<WorkUnit> units;
    units.reserve(ranked.size());
    for (std::size_t c = 0; c < ranked.size(); ++c) {
      // Slices proportional to the component's posting share, so the
      // per-worker critical path tracks total_work / threads instead of
      // max(component). Deterministic (integer arithmetic on snapshot
      // sizes), hence identical across runs.
      std::size_t slices = 1;
      if (threads > 1 && ranked_postings > 0) {
        const std::size_t share =
            (ranked[c].component->num_postings() * threads +
             ranked_postings / 2) /
            ranked_postings;
        slices = std::clamp<std::size_t>(share, 1, threads);
      }
      for (std::size_t s = 0; s < slices; ++s) {
        units.push_back({c, static_cast<std::uint32_t>(s),
                         static_cast<std::uint32_t>(slices)});
      }
    }
    std::atomic<std::size_t> next_unit{0};
    const auto run_worker = [&](QueryScratch& ws, QueryStats& wqs) {
      std::vector<Posting>& round = ws.round;
      std::vector<std::uint32_t>& round_terms = ws.round_terms;
      StreamSeenFilter seen(ws, max_stream);
      while (true) {
        const std::size_t u =
            next_unit.fetch_add(1, std::memory_order_relaxed);
        if (u >= units.size()) break;
        const WorkUnit unit = units[u];
        const std::size_t c = unit.comp;
        if (config_.use_bound &&
            shared.ThresholdScore() > ranked[c].bound) {
          if (unit.slice == 0) {
            ++wqs.components_pruned;
            wqs.terminated_early = true;
          }
          continue;
        }
        if (unit.slice == 0) ++wqs.components_visited;
        const bool screen = screen_base && ranked[c].screen;
        const double rel_total = ranked[c].rel_total;
        const double* other_tfidf =
            screen_tfidf.data() + ranked[c].order * nq;
        ComponentTraversal traversal(*ranked[c].component, q);
        seen.NextComponent();
        round.clear();
        round_terms.clear();
        bool cut_off = false;
        // The per-round Threshold() bound is exp()-heavy and a round
        // yields only ~3 postings per term, so checking every round
        // dominates a slice's duplicated scan cost. Checking every
        // kBoundCheckInterval rounds only scans deeper before cutting
        // off; with the sound kGlobalPop ceilings that can never change
        // the result set.
        constexpr std::uint32_t kBoundCheckInterval = 8;
        std::uint32_t rounds_since_check = 0;
        while (!cut_off && traversal.NextRound(round, round_terms)) {
          for (std::size_t ri = 0; ri < round.size(); ++ri) {
            const Posting& p = round[ri];
            if (unit.num_slices > 1 &&
                p.stream % unit.num_slices != unit.slice) {
              continue;
            }
            if (!seen.Insert(p.stream)) continue;
            if (scored.count(p.stream) > 0) continue;
            StreamInfo info;
            if (!streams_.Get(p.stream, info)) continue;  // Deleted.
            if (filter.live_only && !info.live) continue;
            if (info.frsh < filter.min_frsh) continue;
            const double pop_score =
                scorer_.PopScore(info.pop_count, max_pop);
            const double frsh_score = scorer_.FrshScore(info.frsh, now);
            // The screen prunes against the *published* threshold, which
            // only ever rises; a screened candidate is strictly below a
            // lower bound of the final k-th score, so worker timing can
            // not change the result set (same argument as the bound
            // pruning above).
            if (screen &&
                shared.ThresholdScore() >
                    scorer_.Combine(pop_score, rel_total, frsh_score) +
                        kScreenSlack) {
              ++wqs.candidates_screened;
              continue;
            }
            const std::size_t ti = round_terms[ri];
            Posting agg;
            if (!traversal.Find(ti, p.stream, agg)) continue;
            double tfidf_sum = scorer_.TermTfIdf(agg.tf, idfs[ti]);
            if (screen && nq > 1 &&
                shared.ThresholdScore() >
                    scorer_.Combine(
                        pop_score,
                        scorer_.RelScore(tfidf_sum + other_tfidf[ti],
                                         num_terms),
                        frsh_score) +
                        kScreenSlack) {
              ++wqs.candidates_screened;
              continue;
            }
            for (std::size_t i = 0; i < nq; ++i) {
              if (i == ti) continue;
              Posting found;
              if (traversal.Find(i, p.stream, found)) {
                tfidf_sum += scorer_.TermTfIdf(found.tf, idfs[i]);
              }
            }
            const double rel_score =
                scorer_.RelScore(tfidf_sum, num_terms);
            shared.Offer(p.stream,
                         scorer_.Combine(pop_score, rel_score,
                                         frsh_score));
            ++wqs.candidates_scored;
          }
          // Slices > 0 re-scan postings that slice 0 also walks; count
          // only slice 0 so the stat keeps its sequential meaning
          // (distinct postings the traversal reached).
          if (unit.slice == 0) wqs.postings_scanned += round.size();
          round.clear();
          round_terms.clear();
          if (config_.use_bound &&
              ++rounds_since_check >= kBoundCheckInterval) {
            rounds_since_check = 0;
            const double threshold = shared.ThresholdScore();
            if (std::isfinite(threshold) &&
                threshold > traversal.Threshold(scorer_, idfs, now, max_pop,
                                                ranked[c].frsh_ceiling,
                                                bound_mode)) {
              wqs.terminated_early = true;
              cut_off = true;
            }
          }
        }
      }
    };

    const std::size_t degree = std::min<std::size_t>(
        static_cast<std::size_t>(config_.query_threads), units.size());
    std::vector<QueryStats> worker_stats(std::max<std::size_t>(degree, 1));
    if (degree > 1 && query_pool_ != nullptr) {
      TaskGroup group(query_pool_.get());
      for (std::size_t w = 1; w < degree; ++w) {
        group.Submit([&, w] {
          ScratchLease worker_lease(scratch_pool_);
          run_worker(*worker_lease, worker_stats[w]);
        });
      }
      run_worker(scratch, worker_stats[0]);
      group.Wait();
    } else {
      run_worker(scratch, worker_stats[0]);
    }
    for (const QueryStats& ws : worker_stats) {
      qs.components_visited += ws.components_visited;
      qs.components_pruned += ws.components_pruned;
      qs.postings_scanned += ws.postings_scanned;
      qs.candidates_scored += ws.candidates_scored;
      qs.candidates_screened += ws.candidates_screened;
      qs.terminated_early = qs.terminated_early || ws.terminated_early;
    }
  }

  std::vector<ScoredStream> results =
      use_executor ? shared.SortedResults() : heap.SortedResults();
  if (explain != nullptr) {
    explain->results.reserve(results.size());
    for (const auto& r : results) {
      auto it = breakdowns.find(r.stream);
      if (it != breakdowns.end()) explain->results.push_back(it->second);
    }
  }
  // Lifetime counters for rtsi_cli stats (relaxed: statistics only).
  cum_visited_.fetch_add(qs.components_visited, std::memory_order_relaxed);
  cum_pruned_.fetch_add(qs.components_pruned, std::memory_order_relaxed);
  cum_skipped_.fetch_add(qs.components_skipped, std::memory_order_relaxed);
  cum_bloom_fp_.fetch_add(qs.bloom_false_positives,
                          std::memory_order_relaxed);
  cum_screened_.fetch_add(qs.candidates_screened,
                          std::memory_order_relaxed);
  if (stats != nullptr) *stats = qs;
  return results;
}

std::size_t RtsiIndex::MemoryBytes() const {
  return tree_.MemoryBytes() + streams_.MemoryBytes() +
         live_terms_.MemoryBytes() + df_.MemoryBytes();
}

}  // namespace rtsi::core
