#include "core/rtsi_index.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "core/query_util.h"
#include "core/top_k.h"

namespace rtsi::core {

using index::Posting;
using index::StreamInfo;
using index::TermPostings;

RtsiIndex::RtsiIndex(const RtsiConfig& config)
    : config_(config),
      scorer_(config.weights, config.freshness_tau_seconds),
      tree_(config.lsm) {
  if (config.async_merge) {
    merge_executor_ = std::make_unique<ThreadPool>(1);
  }
}

RtsiIndex::~RtsiIndex() { WaitForMerges(); }

void RtsiIndex::WaitForMerges() {
  if (merge_executor_ != nullptr) merge_executor_->Wait();
}

lsm::MergeHooks RtsiIndex::MakeMergeHooks() {
  lsm::MergeHooks hooks;
  hooks.is_deleted = [this](StreamId stream) {
    return streams_.IsDeleted(stream);
  };
  hooks.on_purged = [this](StreamId stream) {
    live_terms_.RemoveStream(stream);
  };
  hooks.on_stream = [this](StreamId stream, bool in_both) {
    if (!in_both) return;
    // The merge consolidated two of this stream's component residencies;
    // once it lives in a single component and stopped broadcasting, the
    // per-component tf is the total and the live-term entries can go.
    const auto [count, live] = streams_.DecrementComponentCount(stream);
    if (count <= 1 && !live) live_terms_.RemoveStream(stream);
  };
  return hooks;
}

void RtsiIndex::DrainPendingFinished() {
  std::vector<StreamId> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_finished_.empty()) return;
    pending.assign(pending_finished_.begin(), pending_finished_.end());
    pending_finished_.clear();
  }
  // These streams finished with all postings in L0; the cascade that just
  // ran consolidated them into a single sealed component.
  for (const StreamId stream : pending) {
    if (streams_.GetComponentCount(stream) <= 1 &&
        !tree_.StreamInL0(stream)) {
      live_terms_.RemoveStream(stream);
    }
  }
}

void RtsiIndex::InsertWindow(StreamId stream, Timestamp now,
                             const std::vector<TermCount>& terms, bool live) {
  // Algorithm 1. Lines 1-3: append to I0's lists and update hash tables.
  std::uint64_t pop_count = 0;
  const bool new_stream = streams_.OnInsert(stream, now, live, &pop_count);
  if (new_stream) df_.AddDocument();
  if (tree_.MarkStreamInL0(stream)) {
    streams_.IncrementComponentCount(stream);
  }
  const float pop_snapshot = static_cast<float>(pop_count);

  const std::vector<TermFreq> totals = live_terms_.AddWindow(stream, terms);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const TermCount& tc = terms[i];
    if (tc.tf == 0) continue;
    if (totals[i] == tc.tf) df_.AddOccurrence(tc.term);  // First window.
    tree_.AddPosting(tc.term, Posting{stream, pop_snapshot, now, tc.tf});
  }

  // Lines 4-7: merge cascade when I0 exceeds delta. With async_merge the
  // cascade runs on the background executor and insertion latency stays
  // flat; the mirror set keeps queries exact either way.
  if (tree_.NeedsMerge()) {
    if (merge_executor_ == nullptr) {
      tree_.MergeCascade(MakeMergeHooks());
      DrainPendingFinished();
    } else if (!merge_scheduled_.exchange(true)) {
      merge_executor_->Submit([this] {
        merge_scheduled_.store(false);
        tree_.MergeCascade(MakeMergeHooks());
        DrainPendingFinished();
      });
    }
  }
}

void RtsiIndex::FinishStream(StreamId stream) {
  streams_.MarkFinished(stream);
  if (streams_.GetComponentCount(stream) <= 1) {
    if (!tree_.StreamInL0(stream)) {
      live_terms_.RemoveStream(stream);
    } else {
      // Still has (possibly duplicate) postings in L0; evict from the
      // live-term table after the next merge consolidates them.
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_finished_.insert(stream);
    }
  }
  // Streams spanning several components are evicted by the merge hook
  // once consolidation brings them down to one residency.
}

void RtsiIndex::DeleteStream(StreamId stream) {
  streams_.MarkDeleted(stream);  // Lazy: postings purged at merges.
  live_terms_.RemoveStream(stream);
}

void RtsiIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  // The RTSI update path touches only the small per-stream table; the
  // popularity snapshots inside sealed lists stay as-is (the bound mode
  // decides how to stay conservative).
  streams_.AddPopularity(stream, delta);
}

std::vector<ScoredStream> RtsiIndex::Query(const std::vector<TermId>& terms,
                                           int k, Timestamp now,
                                           QueryStats* stats) {
  return QueryImpl(terms, k, now, QueryFilter{}, stats, nullptr);
}

std::vector<ScoredStream> RtsiIndex::QueryFiltered(
    const std::vector<TermId>& terms, int k, Timestamp now,
    const QueryFilter& filter, QueryStats* stats) {
  return QueryImpl(terms, k, now, filter, stats, nullptr);
}

QueryExplanation RtsiIndex::ExplainQuery(const std::vector<TermId>& terms,
                                         int k, Timestamp now,
                                         const QueryFilter& filter) {
  QueryExplanation explanation;
  QueryImpl(terms, k, now, filter, nullptr, &explanation);
  return explanation;
}

std::vector<ScoredStream> RtsiIndex::QueryImpl(
    const std::vector<TermId>& terms, int k, Timestamp now,
    const QueryFilter& filter, QueryStats* stats,
    QueryExplanation* explain) {
  QueryStats local_stats;
  QueryStats& qs = stats != nullptr ? *stats : local_stats;
  qs = QueryStats{};

  // Deduplicate query terms, preserving order.
  std::vector<TermId> q;
  for (const TermId term : terms) {
    if (std::find(q.begin(), q.end(), term) == q.end()) q.push_back(term);
  }
  if (explain != nullptr) {
    explain->terms = q;
    explain->k = k;
    explain->now = now;
  }
  if (q.empty() || k <= 0) return {};
  const int num_terms = static_cast<int>(q.size());

  std::vector<double> idfs(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) idfs[i] = df_.Idf(q[i]);
  if (explain != nullptr) explain->idfs = idfs;
  const std::uint64_t max_pop = streams_.max_pop_count();

  TopKHeap heap(k);
  std::unordered_set<StreamId> scored;
  std::unordered_map<StreamId, ScoreBreakdown> breakdowns;

  auto score_candidate = [&](StreamId stream, double tfidf_sum,
                             ScoreBreakdown::Source source,
                             const std::vector<TermFreq>* tfs) {
    StreamInfo info;
    if (!streams_.Get(stream, info)) return;  // Deleted or unknown.
    if (filter.live_only && !info.live) return;
    if (info.frsh < filter.min_frsh) return;
    const double pop_score = scorer_.PopScore(info.pop_count, max_pop);
    const double rel_score = scorer_.RelScore(tfidf_sum, num_terms);
    const double frsh_score = scorer_.FrshScore(info.frsh, now);
    const double score = scorer_.Combine(pop_score, rel_score, frsh_score);
    heap.Offer(stream, score);
    ++qs.candidates_scored;
    if (explain != nullptr) {
      ScoreBreakdown breakdown;
      breakdown.stream = stream;
      breakdown.pop_score = pop_score;
      breakdown.rel_score = rel_score;
      breakdown.frsh_score = frsh_score;
      breakdown.total = score;
      breakdown.source = source;
      if (tfs != nullptr) breakdown.term_tfs = *tfs;
      breakdowns[stream] = std::move(breakdown);
    }
  };

  // Phase 1: score every live-table stream touching a query term (the
  // table is term-keyed, so only matching streams are visited). Their
  // totals are exact regardless of how many components hold their
  // postings; afterwards, any unscored candidate is single-component.
  std::vector<StreamId> table_matches;
  for (const TermId term : q) {
    live_terms_.ForEachStreamOfTerm(term, [&](StreamId stream, TermFreq) {
      table_matches.push_back(stream);
    });
  }
  for (const StreamId stream : table_matches) {
    if (!scored.insert(stream).second) continue;
    double tfidf_sum = 0.0;
    std::vector<TermFreq> tfs(q.size(), 0);
    for (std::size_t i = 0; i < q.size(); ++i) {
      tfs[i] = live_terms_.GetTotal(stream, q[i]);
      tfidf_sum += scorer_.TermTfIdf(tfs[i], idfs[i]);
    }
    score_candidate(stream, tfidf_sum, ScoreBreakdown::Source::kLiveTable,
                    &tfs);
  }
  if (explain != nullptr) {
    explain->live_table_candidates = scored.size();
  }

  // Phase 2: full scan of I0 (it is small by construction). Accumulates
  // per-stream tf sums, exact for streams whose postings are L0-only.
  std::unordered_map<StreamId, std::vector<TermFreq>> l0_tf;
  for (std::size_t i = 0; i < q.size(); ++i) {
    tree_.WithL0Term(q[i], [&](const TermPostings* postings) {
      if (postings == nullptr) return;
      qs.postings_scanned += postings->size();
      for (const Posting& p : postings->entries()) {
        auto [it, inserted] = l0_tf.try_emplace(p.stream);
        if (inserted) it->second.assign(q.size(), 0);
        it->second[i] += p.tf;
      }
    });
  }
  std::size_t l0_candidates = 0;
  for (const auto& [stream, tfs] : l0_tf) {
    if (scored.count(stream) > 0) continue;
    double tfidf_sum = 0.0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      tfidf_sum += scorer_.TermTfIdf(tfs[i], idfs[i]);
    }
    scored.insert(stream);
    ++l0_candidates;
    score_candidate(stream, tfidf_sum, ScoreBreakdown::Source::kL0Scan,
                    &tfs);
  }
  if (explain != nullptr) explain->l0_candidates = l0_candidates;

  // Phase 3: sealed components, best upper bound first (Algorithm 3's
  // sc-top pruning, strengthened by processing in bound order).
  const auto snapshot = tree_.SealedSnapshot();
  struct RankedComponent {
    const index::InvertedIndex* component;
    double bound;
    std::size_t explain_slot;
  };
  std::vector<RankedComponent> ranked;
  ranked.reserve(snapshot.size());
  for (const auto& component : snapshot) {
    std::vector<PerTermBound> per_term(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) {
      per_term[i].bounds = component->Bounds(q[i]);
      per_term[i].idf = idfs[i];
      per_term[i].tf_correction = 0;  // Consolidation invariant.
    }
    const double bound = ComponentBound(scorer_, per_term, now, max_pop,
                                        config_.bound_mode);
    std::size_t slot = 0;
    if (explain != nullptr) {
      ComponentExplanation ce;
      ce.level = component->level();
      ce.num_postings = component->num_postings();
      ce.upper_bound = bound;
      slot = explain->components.size();
      explain->components.push_back(ce);
    }
    if (bound > 0.0) ranked.push_back({component.get(), bound, slot});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedComponent& a, const RankedComponent& b) {
              return a.bound > b.bound;
            });

  std::vector<Posting> round;
  for (std::size_t c = 0; c < ranked.size(); ++c) {
    if (config_.use_bound && heap.full() &&
        heap.KthScore() >= ranked[c].bound) {
      qs.components_pruned += ranked.size() - c;
      qs.terminated_early = true;
      break;
    }
    ++qs.components_visited;
    if (explain != nullptr) {
      explain->components[ranked[c].explain_slot].visited = true;
    }
    ComponentTraversal traversal(*ranked[c].component, q);
    while (traversal.NextRound(round)) {
      for (const Posting& p : round) {
        if (!scored.insert(p.stream).second) continue;
        // Unscored here means single-component: every query-term posting
        // of this stream lives in this component. Random-access them.
        double tfidf_sum = 0.0;
        std::vector<TermFreq> tfs(q.size(), 0);
        for (std::size_t i = 0; i < q.size(); ++i) {
          Posting found;
          if (traversal.Find(i, p.stream, found)) {
            tfs[i] = found.tf;
            tfidf_sum += scorer_.TermTfIdf(found.tf, idfs[i]);
          }
        }
        score_candidate(p.stream, tfidf_sum,
                        ScoreBreakdown::Source::kSealedComponent, &tfs);
      }
      qs.postings_scanned += round.size();
      round.clear();
      if (config_.use_bound && heap.full()) {
        const double tau = traversal.Threshold(scorer_, idfs, now, max_pop,
                                               config_.bound_mode);
        if (heap.KthScore() >= tau) {
          qs.terminated_early = true;
          if (explain != nullptr) {
            explain->components[ranked[c].explain_slot].terminated_early =
                true;
          }
          break;
        }
      }
    }
    if (explain != nullptr) {
      explain->components[ranked[c].explain_slot].postings_yielded =
          traversal.postings_yielded();
    }
  }

  std::vector<ScoredStream> results = heap.SortedResults();
  if (explain != nullptr) {
    explain->results.reserve(results.size());
    for (const auto& r : results) {
      auto it = breakdowns.find(r.stream);
      if (it != breakdowns.end()) explain->results.push_back(it->second);
    }
  }
  return results;
}

std::size_t RtsiIndex::MemoryBytes() const {
  return tree_.MemoryBytes() + streams_.MemoryBytes() +
         live_terms_.MemoryBytes() + df_.MemoryBytes();
}

}  // namespace rtsi::core
