#include "core/rtsi_index.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/top_k.h"
#include "exec/accumulator.h"
#include "exec/pipeline.h"
#include "exec/selector.h"

namespace rtsi::core {

using index::Posting;
using index::TermPostings;

namespace {

// The single arena switch lives on RtsiConfig; mirror it into the LSM
// config before the tree is constructed from it.
RtsiConfig Normalized(RtsiConfig config) {
  config.lsm.use_arena = config.use_arena;
  return config;
}

// Exact-phase candidate policy for explanations: scores exactly like
// exec::ExactScorer and additionally records per-candidate breakdowns
// (keep-best-per-stream under the heap's total order, so the retained
// breakdown is the one whose score the result carries).
class ExplainRecorder {
 public:
  ExplainRecorder(const exec::QueryPlan& plan, const Scorer& scorer,
                  const index::StreamInfoTable& streams,
                  exec::ResultSink& sink, QueryStats& qs,
                  std::unordered_map<StreamId, ScoreBreakdown>& breakdowns)
      : plan_(plan),
        scorer_(scorer),
        streams_(streams),
        sink_(sink),
        qs_(qs),
        breakdowns_(breakdowns) {}

  void Candidate(StreamId stream, double tfidf_sum, const TermFreq* tfs,
                 ScoreBreakdown::Source source) {
    exec::PartScores parts;
    if (!exec::ComputeScore(plan_, scorer_, streams_, stream, tfidf_sum,
                            parts)) {
      return;
    }
    sink_.Offer(stream, parts.total);
    ++qs_.candidates_scored;
    // A stream scored in several components keeps the breakdown of its
    // better-ranked (retained) scoring.
    const auto it = breakdowns_.find(stream);
    if (it != breakdowns_.end() &&
        !TopKHeap::RanksAbove({stream, parts.total},
                              {stream, it->second.total})) {
      return;
    }
    ScoreBreakdown breakdown;
    breakdown.stream = stream;
    breakdown.pop_score = parts.pop;
    breakdown.rel_score = parts.rel;
    breakdown.frsh_score = parts.frsh;
    breakdown.total = parts.total;
    breakdown.source = source;
    if (tfs != nullptr) {
      breakdown.term_tfs.assign(tfs, tfs + plan_.num_terms());
    }
    breakdowns_[stream] = std::move(breakdown);
  }

 private:
  const exec::QueryPlan& plan_;
  const Scorer& scorer_;
  const index::StreamInfoTable& streams_;
  exec::ResultSink& sink_;
  QueryStats& qs_;
  std::unordered_map<StreamId, ScoreBreakdown>& breakdowns_;
};

// Sealed-component candidate policy for explanations: full scoring with
// per-term tf capture, same discovering-term-first accumulation order as
// the fast path so explained totals match Query() bit-for-bit. No
// admission screen (the explanation reports every scored candidate).
class ExplainSealedPolicy {
 public:
  ExplainSealedPolicy(const exec::QueryPlan& plan, const Scorer& scorer,
                      QueryScratch& scratch, StreamId max_stream,
                      const std::unordered_set<StreamId>& scored,
                      ExplainRecorder& recorder)
      : plan_(plan),
        scorer_(scorer),
        scratch_(scratch),
        gate_(scratch, max_stream, scored),
        recorder_(recorder) {}

  std::vector<Posting>& round() { return scratch_.round; }
  std::vector<std::uint32_t>& round_terms() { return scratch_.round_terms; }

  void BeginComponent(const exec::SelectedComponent&) {
    gate_.NextComponent();
  }

  bool Admit(StreamId stream) { return gate_.Admit(stream); }

  void Candidate(const exec::Traversal& traversal, StreamId stream,
                 std::size_t ti, QueryStats&) {
    const std::size_t nq = plan_.num_terms();
    std::vector<TermFreq>& tfs = scratch_.tfs;
    tfs.assign(nq, 0);
    double tfidf_sum = 0.0;
    Posting agg;
    if (traversal.Find(ti, stream, agg)) {
      tfs[ti] = agg.tf;
      tfidf_sum = scorer_.TermTfIdf(agg.tf, plan_.idfs[ti]);
    }
    for (std::size_t i = 0; i < nq; ++i) {
      if (i == ti) continue;
      Posting found;
      if (traversal.Find(i, stream, found)) {
        tfs[i] = found.tf;
        tfidf_sum += scorer_.TermTfIdf(found.tf, plan_.idfs[i]);
      }
    }
    recorder_.Candidate(stream, tfidf_sum, tfs.data(),
                        ScoreBreakdown::Source::kSealedComponent);
  }

 private:
  const exec::QueryPlan& plan_;
  const Scorer& scorer_;
  QueryScratch& scratch_;
  exec::CandidateGate gate_;
  ExplainRecorder& recorder_;
};

}  // namespace

RtsiIndex::RtsiIndex(const RtsiConfig& config)
    : config_(Normalized(config)),
      scorer_(config.weights, config.freshness_tau_seconds),
      tree_(config_.lsm),
      live_terms_(config_.use_arena, tree_.memory_tracker()) {
  if (config.async_merge) {
    merge_executor_ = std::make_unique<ThreadPool>(1);
  }
  if (config.query_threads > 1) {
    // The querying thread is one worker of the executor; the pool supplies
    // the other query_threads - 1.
    query_pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(config.query_threads) - 1);
  }
}

RtsiIndex::~RtsiIndex() { WaitForMerges(); }

void RtsiIndex::SetQueryThreads(int query_threads) {
  config_.query_threads = query_threads < 0 ? 0 : query_threads;
  const auto want = static_cast<std::size_t>(
      config_.query_threads > 1 ? config_.query_threads - 1 : 0);
  const std::size_t have =
      query_pool_ != nullptr ? query_pool_->num_threads() : 0;
  if (want == have) return;
  if (query_pool_ != nullptr) {
    // Drain in-flight tasks; with no concurrent queries (the caller's
    // contract) every scratch lease has been returned to the pool once
    // Wait() returns, so the excess workers can be joined safely.
    query_pool_->Wait();
  }
  query_pool_ = want > 0 ? std::make_unique<ThreadPool>(want) : nullptr;
  // Steady state needs one scratch per executing thread (workers plus the
  // querying thread); release the rest so memory tracks the new degree.
  scratch_pool_.TrimTo(want + 1);
}

void RtsiIndex::SetUseBound(bool use_bound) {
  config_.use_bound = use_bound;
}

void RtsiIndex::SetUseSkipHeader(bool use_skip_header) {
  config_.use_skip_header = use_skip_header;
}

void RtsiIndex::SetMergePolicy(lsm::MergePolicy policy) {
  config_.lsm.policy = policy;
  tree_.SetPolicy(policy);
}

void RtsiIndex::SetCascadeObserver(std::function<void()> observer) {
  cascade_observer_ = std::move(observer);
}

void RtsiIndex::BindSharedScoring(
    std::shared_ptr<SharedScoringState> shared) {
  shared_scoring_ = std::move(shared);
  if (shared_scoring_ != nullptr) {
    // A shard that already holds state (snapshot restore, journal replay)
    // contributes its current maximum; the df aggregate is rebuilt by the
    // shard set, which sums every shard's table.
    shared_scoring_->BumpMaxPop(streams_.max_pop_count());
  }
}

void RtsiIndex::WaitForMerges() {
  if (merge_executor_ != nullptr) merge_executor_->Wait();
}

lsm::MergeHooks RtsiIndex::MakeMergeHooks() {
  lsm::MergeHooks hooks;
  hooks.is_deleted = [this](StreamId stream) {
    return streams_.IsDeleted(stream);
  };
  hooks.on_purged = [this](StreamId stream) {
    live_terms_.RemoveStream(stream);
  };
  hooks.on_stream = [this](StreamId stream, std::uint32_t copies,
                           const index::InvertedIndex& merged) {
    // Register the stream on the (unpublished) merge output — its live
    // freshness bumps the output's ceiling cell on the way. The input
    // residencies stay until on_retired fires post-swap, so inserts keep
    // bumping the still-query-visible inputs' ceilings. When the merge
    // consolidated several of this stream's residencies into one and the
    // stream stopped broadcasting, the per-component tf is the total and
    // the live-term entries can go.
    const auto [count, live] = streams_.MergeResidency(
        stream, copies, merged.component_id(), merged.ceiling_cell());
    if (copies > 1 && count <= 1 && !live) live_terms_.RemoveStream(stream);
  };
  hooks.on_retired = [this](StreamId stream,
                            const std::vector<ComponentId>& from) {
    // The merge inputs left the component list: their ceiling cells can
    // no longer reach a query, so the residency entries go.
    streams_.DropResidency(stream, from);
  };
  hooks.on_cascade_step = cascade_observer_;
  hooks.on_frozen = [this](const index::InvertedIndex& frozen) {
    // A new sealed component is about to become query-visible: register a
    // residency (stream -> ceiling cell) for every distinct stream it
    // holds, from the frozen postings themselves, so the set is exact
    // whatever racing freezes did to the L0 epochs.
    std::unordered_set<StreamId> streams;
    frozen.ForEachTerm([&](TermId, const TermPostings& postings) {
      for (const Posting& p : postings.entries()) streams.insert(p.stream);
    });
    for (const StreamId stream : streams) {
      streams_.AddSealedResidency(stream, frozen.component_id(),
                                  frozen.ceiling_cell());
    }
  };
  return hooks;
}

void RtsiIndex::DrainPendingFinished() {
  std::vector<StreamId> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_finished_.empty()) return;
    pending.assign(pending_finished_.begin(), pending_finished_.end());
    pending_finished_.clear();
  }
  // These streams finished with all postings in L0; the cascade that just
  // ran consolidated them into a single sealed component.
  for (const StreamId stream : pending) {
    if (streams_.GetComponentCount(stream) <= 1 &&
        !tree_.StreamInL0(stream)) {
      live_terms_.RemoveStream(stream);
    }
  }
}

void RtsiIndex::InsertWindow(StreamId stream, Timestamp now,
                             const std::vector<TermCount>& terms, bool live) {
  // Algorithm 1. Lines 1-3: append to I0's lists and update hash tables.
  std::uint64_t pop_count = 0;
  const bool new_stream = streams_.OnInsert(stream, now, live, &pop_count);
  if (new_stream) {
    df_.AddDocument();
    if (shared_scoring_ != nullptr) shared_scoring_->df.AddDocument();
  }
  const float pop_snapshot = static_cast<float>(pop_count);

  const std::vector<TermFreq> totals = live_terms_.AddWindow(stream, terms);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const TermCount& tc = terms[i];
    if (tc.tf == 0) continue;
    if (totals[i] == tc.tf) {  // First window holding this term.
      df_.AddOccurrence(tc.term);
      if (shared_scoring_ != nullptr) {
        shared_scoring_->df.AddOccurrence(tc.term);
      }
    }
    // AddPosting marks the stream's L0-epoch presence atomically with the
    // posting (under the term-shard lock), returning true on the stream's
    // first posting of the epoch. Incrementing per true return — instead
    // of one up-front MarkStreamInL0 — closes the race where a freeze
    // slipped between the mark and the adds and left the component count
    // short for the new epoch; a freeze splitting this window's postings
    // across two epochs now yields the correct two increments.
    if (tree_.AddPosting(tc.term, Posting{stream, pop_snapshot, now, tc.tf})) {
      streams_.IncrementComponentCount(stream);
    }
  }

  // Lines 4-7: merge cascade when I0 exceeds delta. With async_merge the
  // cascade runs on the background executor and insertion latency stays
  // flat; epoch-published views keep queries exact either way.
  if (tree_.NeedsMerge()) {
    if (merge_executor_ == nullptr) {
      tree_.MergeCascade(MakeMergeHooks());
      DrainPendingFinished();
    } else if (!merge_scheduled_.exchange(true)) {
      merge_executor_->Submit([this] {
        merge_scheduled_.store(false);
        tree_.MergeCascade(MakeMergeHooks());
        DrainPendingFinished();
      });
    }
  }
}

void RtsiIndex::FinishStream(StreamId stream) {
  streams_.MarkFinished(stream);
  if (streams_.GetComponentCount(stream) <= 1) {
    if (!tree_.StreamInL0(stream)) {
      live_terms_.RemoveStream(stream);
    } else {
      // Still has (possibly duplicate) postings in L0; evict from the
      // live-term table after the next merge consolidates them.
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_finished_.insert(stream);
    }
  }
  // Streams spanning several components are evicted by the merge hook
  // once consolidation brings them down to one residency.
}

void RtsiIndex::DeleteStream(StreamId stream) {
  streams_.MarkDeleted(stream);  // Lazy: postings purged at merges.
  live_terms_.RemoveStream(stream);
}

void RtsiIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  // The RTSI update path touches only the small per-stream table; the
  // popularity snapshots inside sealed lists stay as-is (the bound mode
  // decides how to stay conservative).
  const std::uint64_t count = streams_.AddPopularity(stream, delta);
  if (shared_scoring_ != nullptr) shared_scoring_->BumpMaxPop(count);
}

std::vector<ScoredStream> RtsiIndex::Query(const std::vector<TermId>& terms,
                                           int k, Timestamp now,
                                           QueryStats* stats) {
  return QueryImpl(terms, k, now, QueryFilter{}, stats, nullptr);
}

std::vector<ScoredStream> RtsiIndex::QueryFiltered(
    const std::vector<TermId>& terms, int k, Timestamp now,
    const QueryFilter& filter, QueryStats* stats) {
  return QueryImpl(terms, k, now, filter, stats, nullptr);
}

QueryExplanation RtsiIndex::ExplainQuery(const std::vector<TermId>& terms,
                                         int k, Timestamp now,
                                         const QueryFilter& filter) {
  QueryExplanation explanation;
  QueryImpl(terms, k, now, filter, nullptr, &explanation);
  return explanation;
}

exec::QueryPlan RtsiIndex::BuildPlan(const std::vector<TermId>& terms,
                                     int k, Timestamp now,
                                     const QueryFilter& filter) const {
  // Sharded deployments score with the corpus-global statistics so every
  // shard computes exactly the score a single unsharded index would; the
  // shard-local tables are a subset (df) / lower bound (max pop) of the
  // aggregate, so the max() only ever picks the shared value — it guards
  // against an aggregate that was bound but not yet refreshed.
  const DocumentFrequencyTable& df =
      shared_scoring_ != nullptr ? shared_scoring_->df : df_;
  const std::uint64_t max_pop =
      shared_scoring_ != nullptr
          ? std::max(shared_scoring_->max_pop.load(std::memory_order_relaxed),
                     streams_.max_pop_count())
          : streams_.max_pop_count();
  // Whenever the executor is enabled (including its sequential explain
  // fallback, which must return the same results), pruning uses the
  // kGlobalPop ceilings. kSnapshot bounds go stale when popularity or
  // freshness updates land after a component seals, which makes pruning
  // decisions depend on traversal timing — sound ceilings are what turn
  // the executor's bit-identity into a theorem instead of a race.
  const BoundMode bound_mode = config_.query_threads > 0
                                   ? BoundMode::kGlobalPop
                                   : config_.bound_mode;
  exec::QueryPlan plan;
  std::vector<TermId> term_set;
  exec::BuildQueryPlan(terms, df, k, now, filter, max_pop, bound_mode,
                       config_.use_bound, /*prune_if_equal=*/false,
                       term_set, plan);
  return plan;
}

void RtsiIndex::RunSequential(const exec::QueryPlan& plan,
                              exec::ResultSink& sink, QueryScratch& scratch,
                              QueryStats& qs) {
  std::unordered_set<StreamId> scored;
  exec::ExactScorer exact(plan, scorer_, streams_, sink, qs);
  exec::RunLiveTablePhase(plan, scorer_, live_terms_, scratch, scored,
                          exact);
  exec::RunL0Phase(plan, scorer_, tree_, scratch, scored, exact, qs);

  // The query pins ONE immutable view here — a single atomic load — and
  // traverses that view: no locks, no structure re-checks, no mirror
  // lookups. Merges publishing mid-query cannot perturb the pinned
  // component set, and pre-merge components stay alive because the pin
  // references them.
  const lsm::IndexViewPtr view = tree_.PinView();
  exec::SelectorOptions options;
  options.consult_headers = config_.use_skip_header;
  options.fallback_ceiling = streams_.max_frsh();
  const std::vector<exec::SelectedComponent> selected =
      exec::SelectComponents(
          plan, scorer_, view->components, options,
          {scratch.per_term, scratch.screen_own, scratch.screen_tfidf}, qs,
          nullptr);
  const bool screen_base = plan.use_bound && options.consult_headers;
  exec::SealedScorer policy(plan, scorer_, streams_, scored,
                            scratch.screen_tfidf, screen_base, scratch,
                            streams_.max_stream_id(), sink);
  exec::RunSealedSequential(plan, scorer_, selected, policy, sink, qs,
                            nullptr);
}

std::vector<ScoredStream> RtsiIndex::ExecutePlan(const exec::QueryPlan& plan,
                                                 exec::ResultSink& sink,
                                                 QueryStats* stats) {
  QueryStats qs;
  if (!plan.empty()) {
    ScratchLease lease(scratch_pool_);
    RunSequential(plan, sink, *lease, qs);
    cum_visited_.fetch_add(qs.components_visited, std::memory_order_relaxed);
    cum_pruned_.fetch_add(qs.components_pruned, std::memory_order_relaxed);
    cum_skipped_.fetch_add(qs.components_skipped, std::memory_order_relaxed);
    cum_bloom_fp_.fetch_add(qs.bloom_false_positives,
                            std::memory_order_relaxed);
    cum_screened_.fetch_add(qs.candidates_screened,
                            std::memory_order_relaxed);
  }
  if (stats != nullptr) *stats = qs;
  return sink.SortedResults();
}

std::vector<ScoredStream> RtsiIndex::QueryImpl(
    const std::vector<TermId>& terms, int k, Timestamp now,
    const QueryFilter& filter, QueryStats* stats,
    QueryExplanation* explain) {
  // Diagnostics accumulate in a local and are published once on exit, so
  // the per-candidate increments never write through the caller's pointer.
  QueryStats qs;

  ScratchLease lease(scratch_pool_);
  QueryScratch& scratch = *lease;

  // Sharded deployments score with the corpus-global statistics (see
  // BuildPlan); the plan captures them once so every operator and every
  // executor worker prunes and scores against the same values.
  const DocumentFrequencyTable& df =
      shared_scoring_ != nullptr ? shared_scoring_->df : df_;
  const std::uint64_t max_pop =
      shared_scoring_ != nullptr
          ? std::max(shared_scoring_->max_pop.load(std::memory_order_relaxed),
                     streams_.max_pop_count())
          : streams_.max_pop_count();
  // The parallel executor handles every query when query_threads >= 1,
  // except explanations, which keep the sequential walk's deterministic
  // per-component bookkeeping. Results are bit-identical either way:
  // scores are order-independent, the sinks break ties totally, and
  // pruning only ever drops candidates strictly below the k-th score.
  const bool use_executor = config_.query_threads > 0 && explain == nullptr;
  const BoundMode bound_mode = config_.query_threads > 0
                                   ? BoundMode::kGlobalPop
                                   : config_.bound_mode;

  exec::QueryPlan& plan = scratch.plan;
  exec::BuildQueryPlan(terms, df, k, now, filter, max_pop, bound_mode,
                       config_.use_bound, /*prune_if_equal=*/false,
                       scratch.term_set, plan);
  if (explain != nullptr) {
    explain->terms = plan.terms;
    explain->k = k;
    explain->now = now;
  }
  if (plan.empty()) {
    if (stats != nullptr) *stats = qs;
    return {};
  }
  if (explain != nullptr) explain->idfs = plan.idfs;

  exec::TopKSink heap_sink(k);
  exec::SharedTopKSink shared_sink(k);
  exec::ResultSink& sink =
      use_executor ? static_cast<exec::ResultSink&>(shared_sink)
                   : static_cast<exec::ResultSink&>(heap_sink);

  std::unordered_map<StreamId, ScoreBreakdown> breakdowns;

  if (!use_executor && explain == nullptr) {
    RunSequential(plan, sink, scratch, qs);
  } else if (explain != nullptr) {
    // Sequential explain walk: the same phases and operators, with the
    // recorder policies capturing per-candidate breakdowns and the
    // selector/driver filling per-component bookkeeping.
    std::unordered_set<StreamId> scored;
    ExplainRecorder recorder(plan, scorer_, streams_, sink, qs, breakdowns);
    exec::RunLiveTablePhase(plan, scorer_, live_terms_, scratch, scored,
                            recorder);
    explain->live_table_candidates = scored.size();
    explain->l0_candidates =
        exec::RunL0Phase(plan, scorer_, tree_, scratch, scored, recorder, qs);
    const lsm::IndexViewPtr view = tree_.PinView();
    exec::SelectorOptions options;
    options.consult_headers = config_.use_skip_header;
    options.fallback_ceiling = streams_.max_frsh();
    const std::vector<exec::SelectedComponent> selected =
        exec::SelectComponents(
            plan, scorer_, view->components, options,
            {scratch.per_term, scratch.screen_own, scratch.screen_tfidf},
            qs, explain);
    ExplainSealedPolicy policy(plan, scorer_, scratch,
                               streams_.max_stream_id(), scored, recorder);
    exec::RunSealedSequential(plan, scorer_, selected, policy, sink, qs,
                              explain);
  } else {
    // Parallel executor: the exact phases run on the querying thread, then
    // workers claim stream-sliced work units off an atomic cursor (so the
    // best bounds are traversed first), publish their k-th score through
    // the shared sink, and prune cooperatively against it.
    std::unordered_set<StreamId> scored;
    exec::ExactScorer exact(plan, scorer_, streams_, sink, qs);
    exec::RunLiveTablePhase(plan, scorer_, live_terms_, scratch, scored,
                            exact);
    exec::RunL0Phase(plan, scorer_, tree_, scratch, scored, exact, qs);
    const lsm::IndexViewPtr view = tree_.PinView();
    exec::SelectorOptions options;
    options.consult_headers = config_.use_skip_header;
    options.fallback_ceiling = streams_.max_frsh();
    const std::vector<exec::SelectedComponent> selected =
        exec::SelectComponents(
            plan, scorer_, view->components, options,
            {scratch.per_term, scratch.screen_own, scratch.screen_tfidf},
            qs, nullptr);
    const bool screen_base = plan.use_bound && options.consult_headers;
    if (!selected.empty()) {
      const std::vector<exec::WorkUnit> units = exec::MakeWorkUnits(
          selected, static_cast<std::size_t>(config_.query_threads));
      std::atomic<std::size_t> next_unit{0};
      const StreamId max_stream = streams_.max_stream_id();
      const auto run_worker = [&](QueryScratch& ws, QueryStats& wqs) {
        exec::SealedScorer policy(plan, scorer_, streams_, scored,
                                  scratch.screen_tfidf, screen_base, ws,
                                  max_stream, sink);
        exec::RunSealedWorker(plan, scorer_, selected, units, next_unit,
                              sink, policy, wqs);
      };
      const std::size_t degree = std::min<std::size_t>(
          static_cast<std::size_t>(config_.query_threads), units.size());
      std::vector<QueryStats> worker_stats(
          std::max<std::size_t>(degree, 1));
      if (degree > 1 && query_pool_ != nullptr) {
        TaskGroup group(query_pool_.get());
        for (std::size_t w = 1; w < degree; ++w) {
          group.Submit([&, w] {
            ScratchLease worker_lease(scratch_pool_);
            run_worker(*worker_lease, worker_stats[w]);
          });
        }
        run_worker(scratch, worker_stats[0]);
        group.Wait();
      } else {
        run_worker(scratch, worker_stats[0]);
      }
      for (const QueryStats& ws : worker_stats) exec::FoldStats(qs, ws);
    }
  }

  std::vector<ScoredStream> results = sink.SortedResults();
  if (explain != nullptr) {
    explain->results.reserve(results.size());
    for (const auto& r : results) {
      auto it = breakdowns.find(r.stream);
      if (it != breakdowns.end()) explain->results.push_back(it->second);
    }
  }
  // Lifetime counters for rtsi_cli stats (relaxed: statistics only).
  cum_visited_.fetch_add(qs.components_visited, std::memory_order_relaxed);
  cum_pruned_.fetch_add(qs.components_pruned, std::memory_order_relaxed);
  cum_skipped_.fetch_add(qs.components_skipped, std::memory_order_relaxed);
  cum_bloom_fp_.fetch_add(qs.bloom_false_positives,
                          std::memory_order_relaxed);
  cum_screened_.fetch_add(qs.candidates_screened,
                          std::memory_order_relaxed);
  if (stats != nullptr) *stats = qs;
  return results;
}

std::size_t RtsiIndex::MemoryBytes() const {
  return tree_.MemoryBytes() + streams_.MemoryBytes() +
         live_terms_.MemoryBytes() + df_.MemoryBytes();
}

}  // namespace rtsi::core
