// The index interface shared by RTSI and the extended-LSII baseline, so
// workloads, tests and benches drive both through identical code.

#ifndef RTSI_CORE_SEARCH_INDEX_H_
#define RTSI_CORE_SEARCH_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace rtsi::core {

/// One term of an audio window with its in-window frequency.
using TermCount = rtsi::TermCount;

/// A scored query result.
struct ScoredStream {
  StreamId stream = 0;
  double score = 0.0;
};

/// Optional result filtering for top-k queries. Filters drop candidates
/// at scoring time; pruning bounds stay valid (they only ever
/// overestimate). Part of the exec::QueryPlan every query path executes.
struct QueryFilter {
  /// Return only streams that are currently broadcasting.
  bool live_only = false;
  /// Return only streams whose latest window is at/after this timestamp
  /// (0 = no constraint).
  Timestamp min_frsh = 0;
};

/// Per-query diagnostics.
struct QueryStats {
  std::size_t components_visited = 0;
  std::size_t components_pruned = 0;   // Dropped by the theta bound walk.
  std::size_t components_skipped = 0;  // Skip header proved terms absent.
  std::size_t bloom_false_positives = 0;
  std::size_t postings_scanned = 0;
  std::size_t candidates_scored = 0;
  std::size_t candidates_screened = 0;  // Dropped by the admission screen.
  bool terminated_early = false;
};

class SearchIndex {
 public:
  virtual ~SearchIndex() = default;

  /// Inserts one audio window (the terms of ~60 s of audio) of `stream`.
  /// `live` marks the stream as still broadcasting.
  virtual void InsertWindow(StreamId stream, Timestamp now,
                            const std::vector<TermCount>& terms,
                            bool live) = 0;

  /// Marks the broadcast finished (stream remains searchable).
  virtual void FinishStream(StreamId stream) = 0;

  /// Lazily deletes the stream: it disappears from results immediately,
  /// postings are purged at merges.
  virtual void DeleteStream(StreamId stream) = 0;

  /// Popularity update (play counter / likes increment).
  virtual void UpdatePopularity(StreamId stream, std::uint64_t delta) = 0;

  /// Top-k search. `now` anchors freshness scoring.
  virtual std::vector<ScoredStream> Query(const std::vector<TermId>& terms,
                                          int k, Timestamp now,
                                          QueryStats* stats) = 0;

  std::vector<ScoredStream> Query(const std::vector<TermId>& terms, int k,
                                  Timestamp now) {
    return Query(terms, k, now, nullptr);
  }

  /// Logical bytes held by the index (postings + hash tables).
  virtual std::size_t MemoryBytes() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_SEARCH_INDEX_H_
