// Scoring (Equation 1): f(q,p) = wp*pop(p) + wr*rel(q,p) + wf*frsh(p).
//
// - pop:  log-scaled play counter, normalized by the global maximum.
// - frsh: exponential decay of the stream's age, newest = 1.
// - rel:  per-term (1 + ln tf) * idf, averaged over query terms and
//         squashed to [0, 1) with x / (1 + x). The squash is monotone, so
//         upper bounds computed from per-list maxima stay valid.

#ifndef RTSI_CORE_SCORER_H_
#define RTSI_CORE_SCORER_H_

#include <cstdint>

#include "common/types.h"
#include "core/config.h"

namespace rtsi::core {

class Scorer {
 public:
  Scorer(const ScoreWeights& weights, double freshness_tau_seconds);

  /// Popularity in [0, 1]: log1p(count) / log1p(max_count).
  double PopScore(std::uint64_t pop_count, std::uint64_t max_pop_count) const;

  /// Freshness in (0, 1]: exp(-(now - frsh) / tau).
  double FrshScore(Timestamp frsh, Timestamp now) const;

  /// Contribution of one query term: (1 + ln tf) * idf; 0 when tf == 0.
  double TermTfIdf(TermFreq tf, double idf) const;

  /// Relevance in [0, 1): squash(sum_tfidf / num_query_terms).
  double RelScore(double tfidf_sum, int num_query_terms) const;

  /// Equation 1.
  double Combine(double pop_score, double rel_score,
                 double frsh_score) const;

  const ScoreWeights& weights() const { return weights_; }
  double tau_seconds() const { return tau_seconds_; }

 private:
  ScoreWeights weights_;
  double tau_seconds_;
};

}  // namespace rtsi::core

#endif  // RTSI_CORE_SCORER_H_
