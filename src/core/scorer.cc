#include "core/scorer.h"

#include <algorithm>
#include <cmath>

namespace rtsi::core {

Scorer::Scorer(const ScoreWeights& weights, double freshness_tau_seconds)
    : weights_(weights),
      tau_seconds_(std::max(freshness_tau_seconds, 1.0)) {}

double Scorer::PopScore(std::uint64_t pop_count,
                        std::uint64_t max_pop_count) const {
  if (max_pop_count == 0) return 0.0;
  return std::log1p(static_cast<double>(pop_count)) /
         std::log1p(static_cast<double>(max_pop_count));
}

double Scorer::FrshScore(Timestamp frsh, Timestamp now) const {
  const double age_seconds =
      std::max<double>(0.0, static_cast<double>(now - frsh)) /
      static_cast<double>(kMicrosPerSecond);
  return std::exp(-age_seconds / tau_seconds_);
}

double Scorer::TermTfIdf(TermFreq tf, double idf) const {
  if (tf == 0) return 0.0;
  return (1.0 + std::log(static_cast<double>(tf))) * idf;
}

double Scorer::RelScore(double tfidf_sum, int num_query_terms) const {
  if (num_query_terms <= 0 || tfidf_sum <= 0.0) return 0.0;
  const double mean = tfidf_sum / num_query_terms;
  return mean / (1.0 + mean);
}

double Scorer::Combine(double pop_score, double rel_score,
                       double frsh_score) const {
  return weights_.pop * pop_score + weights_.rel * rel_score +
         weights_.frsh * frsh_score;
}

}  // namespace rtsi::core
