#!/usr/bin/env bash
# Single entry point for the repo's check ladder:
#
#   1. configure + build (RelWithDebInfo, default toolchain)
#   2. tier-1 test suite        (ctest, the correctness gate)
#   3. bench smoke              (ctest -L bench-smoke: every bench binary
#                                at RTSI_BENCH_SCALE=0.01 — catches bench
#                                bit-rot plus the correctness exits: the
#                                fig10 skip on/off checksum divergence and
#                                the ablation_policy optimized-vs-walk
#                                audit across all three compaction
#                                policies)
#   4. sanitizer gate           (tools/run_sanitizers.sh: full suite under
#                                ASan, `-L sanitizer` under TSan — the
#                                label includes query_pipeline_test, so
#                                the shared exec:: pipeline that every
#                                query path drives, src/exec/, is
#                                exercised under both sanitizers)
#
# Usage: tools/run_checks.sh [fast|full] [build-dir]
#   fast — steps 1-3 (the pre-push loop).
#   full — steps 1-4 (default; what CI runs).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-full}"
BUILD_DIR="${2:-$REPO_ROOT/build}"

case "$MODE" in
  fast|full) ;;
  *)
    echo "usage: $0 [fast|full] [build-dir]" >&2
    exit 2
    ;;
esac

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== tier-1 tests =="
ctest --test-dir "$BUILD_DIR" -LE bench-smoke --output-on-failure \
      -j"$(nproc)"

echo "== bench smoke =="
ctest --test-dir "$BUILD_DIR" -L bench-smoke --output-on-failure \
      -j"$(nproc)"

if [ "$MODE" = "full" ]; then
  echo "== sanitizers =="
  "$REPO_ROOT/tools/run_sanitizers.sh" all "${BUILD_DIR}-san"
fi

echo "All checks passed."
