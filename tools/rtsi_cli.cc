// rtsi_cli — operational command line for the RTSI index.
//
//   rtsi_cli record <#init-streams> <#ops> <query%> <out.trace>
//       Generate a reproducible synthetic workload trace.
//   rtsi_cli replay <trace> [rtsi|lsii]
//       Replay a trace against an index and report latency statistics.
//   rtsi_cli build <trace> <out.snap>
//       Replay a trace into an RTSI index and save a snapshot.
//   rtsi_cli stats <snapshot|shard-set-dir>
//       Print the statistics of a saved index, or — pointed at a shard
//       set's durable root — recover every shard and print per-shard
//       view epochs, run shapes, arenas and recovery stats.
//   rtsi_cli query <snapshot> <k> <term> [term...]
//       Load a snapshot and run one query (terms are numeric ids).
//   rtsi_cli explain <snapshot> <k> <term> [term...]
//       Like query, but prints the full ranking explanation (candidate
//       sources, component bounds, prune decisions, score breakdowns).
//   rtsi_cli synth <out.wav> <word> [word...]
//       Synthesize a spoken phrase to a WAV file.
//   rtsi_cli inspect-journal <journal>
//       Validate a journal's record CRCs; report epoch, record counts,
//       torn tails and the first corrupt offset (exit 1 on corruption).

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "asr/lexicon.h"
#include "shard/shard_set.h"
#include "audio/synthesizer.h"
#include "audio/wav.h"
#include "baseline/lsii_index.h"
#include "common/rng.h"
#include "core/rtsi_index.h"
#include "storage/journal.h"
#include "storage/snapshot.h"
#include "workload/corpus.h"
#include "workload/query_gen.h"
#include "workload/trace.h"

namespace {

using namespace rtsi;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rtsi_cli record <#init-streams> <#ops> <query%%> "
               "<out.trace>\n"
               "  rtsi_cli replay <trace> [rtsi|lsii]\n"
               "  rtsi_cli build <trace> <out.snap>\n"
               "  rtsi_cli stats <snapshot|shard-set-dir>\n"
               "  rtsi_cli query <snapshot> <k> <term> [term...]\n"
               "  rtsi_cli explain <snapshot> <k> <term> [term...]\n"
               "  rtsi_cli synth <out.wav> <word> [word...]\n"
               "  rtsi_cli inspect-journal <journal>\n");
  return 2;
}

core::RtsiConfig DefaultConfig() {
  core::RtsiConfig config;
  config.lsm.delta = 64 * 1024;
  return config;
}

int CmdRecord(int argc, char** argv) {
  if (argc != 4) return Usage();
  const std::size_t init_streams = std::strtoul(argv[0], nullptr, 10);
  const std::size_t ops = std::strtoul(argv[1], nullptr, 10);
  const int query_percent = std::atoi(argv[2]);

  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = init_streams + ops;  // Upper bound.
  const workload::SyntheticCorpus corpus(corpus_config);
  workload::QueryGenConfig query_config;
  query_config.vocab_size = corpus_config.vocab_size;
  workload::QueryGenerator gen(query_config);

  const workload::Trace trace = workload::RecordMixedTrace(
      corpus, gen, init_streams, ops, query_percent, 10);
  const Status status = trace.SaveToFile(argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("recorded %zu ops to %s\n", trace.size(), argv[3]);
  return 0;
}

int CmdReplay(int argc, char** argv) {
  if (argc < 1 || argc > 2) return Usage();
  auto trace_result = workload::Trace::LoadFromFile(argv[0]);
  if (!trace_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 trace_result.status().ToString().c_str());
    return 1;
  }
  const bool use_lsii = argc == 2 && std::strcmp(argv[1], "lsii") == 0;

  std::unique_ptr<core::SearchIndex> index;
  if (use_lsii) {
    index = std::make_unique<baseline::LsiiIndex>(DefaultConfig());
  } else {
    index = std::make_unique<core::RtsiIndex>(DefaultConfig());
  }
  const workload::ReplayResult result =
      workload::ReplayTrace(trace_result.value(), *index);
  std::printf("%s replay of %s:\n", index->name().c_str(), argv[0]);
  std::printf("  insertions: %s\n", result.insertions.Summary().c_str());
  std::printf("  queries:    %s\n", result.queries.Summary().c_str());
  std::printf("  updates:    %s\n", result.updates.Summary().c_str());
  std::printf("  finishes:   %zu, deletions: %zu\n", result.finishes,
              result.deletions);
  std::printf("  index memory: %.2f MB\n",
              index->MemoryBytes() / (1024.0 * 1024.0));
  return 0;
}

int CmdBuild(int argc, char** argv) {
  if (argc != 2) return Usage();
  auto trace_result = workload::Trace::LoadFromFile(argv[0]);
  if (!trace_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 trace_result.status().ToString().c_str());
    return 1;
  }
  core::RtsiIndex index(DefaultConfig());
  workload::ReplayTrace(trace_result.value(), index);
  const Status status = storage::SaveIndexSnapshot(index, argv[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("built index (%zu postings) and saved snapshot to %s\n",
              index.tree().total_postings(), argv[1]);
  return 0;
}

/// `rtsi_cli stats` pointed at a shard-set root (the durable_dir of a
/// shard::IndexShardSet, holding shard-0/, shard-1/, ...): recover every
/// shard and print the per-shard view epochs, run shapes and arenas.
int CmdShardStats(const char* dir) {
  int num_shards = 0;
  while (true) {
    struct stat st{};
    const std::string shard_dir =
        std::string(dir) + "/shard-" + std::to_string(num_shards);
    if (::stat(shard_dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) break;
    ++num_shards;
  }
  if (num_shards == 0) {
    std::fprintf(stderr, "error: %s has no shard-0/ directory\n", dir);
    return 1;
  }
  shard::ShardSetConfig config;
  config.index = DefaultConfig();
  config.num_shards = num_shards;
  config.durable_dir = dir;
  std::vector<storage::RecoveryStats> recovery;
  auto opened = shard::IndexShardSet::Open(config, &recovery);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  const shard::IndexShardSet& set = *opened.value();
  std::printf("shard set %s: %d shards\n", dir, num_shards);
  std::size_t total_postings = 0, total_streams = 0, total_memory = 0;
  for (int s = 0; s < num_shards; ++s) {
    const auto stats = set.GetShardStats(s);
    std::string shape;
    for (std::size_t level = 0; level < stats.runs_per_level.size();
         ++level) {
      if (!shape.empty()) shape += ", ";
      shape +=
          "L" + std::to_string(level) + "=" +
          std::to_string(stats.runs_per_level[level]);
    }
    std::printf(
        "  shard %d: epoch %llu, %zu postings, %zu streams, "
        "arena %zu B, %.2f MB%s%s%s%s\n",
        s, static_cast<unsigned long long>(stats.view_epoch), stats.postings,
        stats.streams, stats.arena_bytes,
        stats.memory_bytes / (1024.0 * 1024.0), shape.empty() ? "" : " (",
        shape.c_str(), shape.empty() ? "" : ")",
        stats.degraded ? " DEGRADED" : "");
    std::printf(
        "           recovery: %llu ops replayed, %s snapshot\n",
        static_cast<unsigned long long>(recovery[s].ops_replayed),
        recovery[s].snapshot_loaded ? "from" : "no");
    total_postings += stats.postings;
    total_streams += stats.streams;
    total_memory += stats.memory_bytes;
  }
  std::printf("  total: %zu postings, %zu streams, %.2f MB\n", total_postings,
              total_streams, total_memory / (1024.0 * 1024.0));
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 1) return Usage();
  {
    struct stat st{};
    if (::stat(argv[0], &st) == 0 && S_ISDIR(st.st_mode)) {
      return CmdShardStats(argv[0]);
    }
  }
  auto loaded = storage::LoadIndexSnapshot(argv[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const core::RtsiIndex& index = *loaded.value();
  std::printf("snapshot %s:\n", argv[0]);
  std::printf("  postings:     %zu (L0: %zu, levels: %zu)\n",
              index.tree().total_postings(), index.tree().l0_postings(),
              index.tree().num_levels());
  // Compaction shape: the policy the restored tree will keep compacting
  // with, and how many sealed runs each level currently holds (tiered
  // levels hold several; a level-0 entry is a frozen, not-yet-folded
  // run — a mid-cascade snapshot).
  {
    const auto runs = index.tree().RunsPerLevel();
    std::string shape;
    for (std::size_t level = 0; level < runs.size(); ++level) {
      if (!shape.empty()) shape += ", ";
      shape += "L" + std::to_string(level) + "=" +
               std::to_string(runs[level]);
    }
    std::printf("  compaction:   %s policy, %zu runs%s%s%s\n",
                lsm::MergePolicyName(index.tree().policy()),
                index.tree().num_runs(), shape.empty() ? "" : " (",
                shape.c_str(), shape.empty() ? "" : ")");
  }
  // Published-view observability: the epoch counts structural changes
  // since birth; components are grouped by level slot; pinned views and
  // retired bytes expose what the refcount-as-mirror scheme holds alive.
  {
    const lsm::IndexViewPtr view = index.tree().PinView();
    std::map<int, std::size_t> per_level;
    for (const auto& component : view->components) {
      ++per_level[component->level()];
    }
    std::string levels;
    for (const auto& [level, count] : per_level) {
      if (!levels.empty()) levels += ", ";
      levels += "L" + std::to_string(level) + ":" + std::to_string(count);
    }
    std::printf("  view:         epoch %llu, %zu sealed components%s%s%s\n",
                static_cast<unsigned long long>(view->epoch),
                view->components.size(), levels.empty() ? "" : " (",
                levels.c_str(), levels.empty() ? "" : ")");
    std::printf("  live views:   %lld (1 = published only; more while "
                "readers pin older epochs)\n",
                static_cast<long long>(index.tree().live_views()));
    std::printf("  retired:      %zu components, %.2f MB held for pins\n",
                index.tree().retired_components(),
                index.tree().RetiredBytes() / (1024.0 * 1024.0));
    // Skip headers: per-level Bloom + summary footprint (from the pinned
    // view), the tracker's category gauge, and the lifetime planner
    // counters (zero on a freshly loaded snapshot until queries run).
    std::map<int, std::size_t> header_bytes;
    for (const auto& component : view->components) {
      if (component->skip_header() != nullptr) {
        header_bytes[component->level()] +=
            component->skip_header()->MemoryBytes();
      }
    }
    std::string per_level_bytes;
    for (const auto& [level, bytes] : header_bytes) {
      if (!per_level_bytes.empty()) per_level_bytes += ", ";
      per_level_bytes +=
          "L" + std::to_string(level) + ":" + std::to_string(bytes) + "B";
    }
    std::printf("  skip headers: %zu B tracked (%s)\n",
                index.tree().memory_tracker()->bytes(
                    MemCategory::kSkipHeader),
                per_level_bytes.empty() ? "none" : per_level_bytes.c_str());
    const core::RtsiIndex::SkipCounters skip = index.GetSkipCounters();
    std::printf("  skip planner: %llu visited, %llu pruned, %llu skipped, "
                "%llu bloom FPs, %llu screened\n",
                static_cast<unsigned long long>(skip.components_visited),
                static_cast<unsigned long long>(skip.components_pruned),
                static_cast<unsigned long long>(skip.components_skipped),
                static_cast<unsigned long long>(skip.bloom_false_positives),
                static_cast<unsigned long long>(skip.candidates_screened));
  }
  std::printf("  streams:      %zu\n", index.stream_table().size());
  std::printf("  live table:   %zu streams, %zu entries\n",
              index.live_table().num_streams(),
              index.live_table().num_entries());
  // Live ingest arenas: the tracker gauge counts slab bytes of the L0
  // shard arenas, the live-term table arenas, and any retired arenas
  // still quarantined on frozen components.
  {
    const WindowArena::Stats arena = index.LiveArenaStats();
    std::printf("  live arena:   %zu B tracked (%zu B owned, %zu B in use, "
                "%llu requests, %llu upstream, %llu freelist hits)\n",
                index.tree().memory_tracker()->bytes(MemCategory::kLiveArena),
                arena.owned_bytes, arena.allocated_bytes,
                static_cast<unsigned long long>(arena.requests),
                static_cast<unsigned long long>(arena.upstream_allocations),
                static_cast<unsigned long long>(arena.freelist_hits));
  }
  std::printf("  documents:    %llu\n",
              static_cast<unsigned long long>(
                  index.doc_freq().num_documents()));
  std::printf("  memory:       %.2f MB\n",
              index.MemoryBytes() / (1024.0 * 1024.0));
  std::printf("  config:       delta=%zu rho=%.1f huffman=%s\n",
              index.config().lsm.delta, index.config().lsm.rho,
              index.config().lsm.compress ? "on" : "off");
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto loaded = storage::LoadIndexSnapshot(argv[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const int k = std::atoi(argv[1]);
  std::vector<TermId> terms;
  for (int i = 2; i < argc; ++i) {
    terms.push_back(static_cast<TermId>(std::strtoul(argv[i], nullptr, 10)));
  }
  core::QueryStats stats;
  const auto results =
      loaded.value()->Query(terms, k, 1'000'000'000'000LL, &stats);
  for (const auto& r : results) {
    std::printf("stream %llu  score %.6f\n",
                static_cast<unsigned long long>(r.stream), r.score);
  }
  std::printf("(%zu candidates scored, %zu postings scanned%s)\n",
              stats.candidates_scored, stats.postings_scanned,
              stats.terminated_early ? ", early termination" : "");
  return 0;
}

int CmdExplain(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto loaded = storage::LoadIndexSnapshot(argv[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const int k = std::atoi(argv[1]);
  std::vector<TermId> terms;
  for (int i = 2; i < argc; ++i) {
    terms.push_back(static_cast<TermId>(std::strtoul(argv[i], nullptr, 10)));
  }
  const auto explanation =
      loaded.value()->ExplainQuery(terms, k, 1'000'000'000'000LL);
  std::fputs(explanation.ToString().c_str(), stdout);
  return 0;
}

int CmdSynth(int argc, char** argv) {
  if (argc < 2) return Usage();
  asr::Lexicon lexicon;
  std::vector<audio::PhoneSpec> specs;
  for (int i = 1; i < argc; ++i) {
    for (const asr::PhonemeId phone : lexicon.Pronounce(argv[i])) {
      specs.push_back(asr::PhonemeSpec(phone));
    }
  }
  audio::SynthesizerConfig synth_config;
  const audio::Synthesizer synth(synth_config);
  Rng rng(1);
  const audio::PcmBuffer pcm = synth.Render(specs, rng);
  const Status status = audio::WriteWav(pcm, argv[0]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %.2fs of speech to %s\n", pcm.duration_seconds(),
              argv[0]);
  return 0;
}

int CmdInspectJournal(int argc, char** argv) {
  if (argc != 1) return Usage();
  const storage::JournalInspection result = storage::InspectJournal(argv[0]);
  if (!result.readable) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("journal %s:\n", argv[0]);
  if (result.has_epoch_header) {
    std::printf("  epoch:        %llu\n",
                static_cast<unsigned long long>(result.epoch));
  } else {
    std::printf("  epoch:        (legacy journal, no epoch header)\n");
  }
  std::printf("  records:      %llu (%llu checksummed)\n",
              static_cast<unsigned long long>(result.records),
              static_cast<unsigned long long>(result.checksummed_records));
  if (result.torn_tail) {
    std::printf("  torn tail:    byte offset %llu (%s) — replay drops it\n",
                static_cast<unsigned long long>(result.torn_tail_offset),
                result.torn_tail_reason.c_str());
  }
  if (result.corrupt) {
    std::printf("  CORRUPT:      first corrupt record at byte offset %llu\n",
                static_cast<unsigned long long>(result.first_corrupt_offset));
    std::printf("  detail:       %s\n", result.error.c_str());
    return 1;
  }
  std::printf("  integrity:    ok%s\n",
              result.torn_tail ? " (modulo torn tail)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "record") return CmdRecord(argc - 2, argv + 2);
  if (command == "replay") return CmdReplay(argc - 2, argv + 2);
  if (command == "build") return CmdBuild(argc - 2, argv + 2);
  if (command == "stats") return CmdStats(argc - 2, argv + 2);
  if (command == "query") return CmdQuery(argc - 2, argv + 2);
  if (command == "explain") return CmdExplain(argc - 2, argv + 2);
  if (command == "synth") return CmdSynth(argc - 2, argv + 2);
  if (command == "inspect-journal") {
    return CmdInspectJournal(argc - 2, argv + 2);
  }
  return Usage();
}
