#!/usr/bin/env bash
# Builds the concurrency-labeled tests under ThreadSanitizer and runs
# them. Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRTSI_SANITIZE=thread

# Only the targets ctest -L concurrency needs; a full TSan build of every
# bench/example would take far longer for no coverage.
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target thread_pool_test async_merge_test parallel_query_test \
           lsm_tree_test crash_recovery_test checkpoint_atomicity_test

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" -L concurrency --output-on-failure \
        -j"$(nproc)"
echo "TSan run clean."
