#!/usr/bin/env bash
# Sanitizer gate for the concurrency-critical surface: builds and runs
# the suite under ASan and/or TSan. ASan catches the lifetime bugs a
# worker-pool shrink or a view swap could introduce (use-after-free of a
# drained scratch, a component freed while a pinned view still walks it,
# a transferred ceiling cell); TSan catches the publication races the
# epoch/pin protocol must exclude.
#
# Usage: tools/run_sanitizers.sh [asan|tsan|all] [build-dir-prefix]
#   asan  — full test suite under AddressSanitizer (heap misuse can hide
#           in any test, so no label filter).
#   tsan  — ctest -L sanitizer under ThreadSanitizer (builds only those
#           targets; a full TSan build of every bench would add time for
#           no coverage).
#   all   — both, ASan first (default).
# Build dirs: <prefix>-asan / <prefix>-tsan (default prefix: build).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-all}"
PREFIX="${2:-$REPO_ROOT/build}"

# Keep in sync with the `sanitizer` ctest label in tests/CMakeLists.txt.
TSAN_TARGETS=(
  thread_pool_test
  async_merge_test
  parallel_query_test
  lsm_tree_test
  crash_recovery_test
  checkpoint_atomicity_test
  view_publication_test
  service_determinism_test
  live_term_table_stress_test
  live_arena_test
  window_arena_test
  shard_determinism_test
  shard_crash_recovery_test
  async_server_test
  query_pipeline_test
)

run_asan() {
  local build_dir="${PREFIX}-asan"
  cmake -B "$build_dir" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRTSI_SANITIZE=address
  cmake --build "$build_dir" -j"$(nproc)"
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
    ctest --test-dir "$build_dir" -LE bench-smoke --output-on-failure \
          -j"$(nproc)"
  echo "ASan run clean."
}

run_tsan() {
  local build_dir="${PREFIX}-tsan"
  cmake -B "$build_dir" -S "$REPO_ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRTSI_SANITIZE=thread
  cmake --build "$build_dir" -j"$(nproc)" --target "${TSAN_TARGETS[@]}"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$build_dir" -L sanitizer --output-on-failure \
          -j"$(nproc)"
  echo "TSan run clean."
}

case "$MODE" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *)
    echo "usage: $0 [asan|tsan|all] [build-dir-prefix]" >&2
    exit 2
    ;;
esac
