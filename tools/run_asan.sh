#!/usr/bin/env bash
# Builds the test suite under AddressSanitizer and runs it. Complements
# tools/run_tsan.sh (races): ASan catches the lifetime bugs a worker-pool
# shrink or a merge/mirror swap could introduce (use-after-free of a
# drained scratch, a dropped component, a transferred ceiling cell).
# Usage: tools/run_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-asan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRTSI_SANITIZE=address

# The whole test suite: unlike TSan (whose coverage is the concurrency
# label), heap misuse can hide in any test.
cmake --build "$BUILD_DIR" -j"$(nproc)"

ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
echo "ASan run clean."
